//! Simulation configuration and the paper's datasets (Table I).
//!
//! Paper-scale runs use up to 2.2M PIC cells and 10⁹ simulation
//! particles on 1536 cores; a single machine cannot hold that, so
//! every dataset carries a `scale` factor (see DESIGN.md §5) that
//! shrinks mesh resolution and particle counts *uniformly across all
//! configurations of an experiment*, preserving relative comparisons.

use balance::{CostSourceKind, RebalanceConfig};
use mesh::NozzleSpec;
use obs::json::{obj, Json};
use obs::{Registry, TraceSpec};
use partition::Decomposition;
use serde::{Deserialize, Serialize};
use vmpi::{FaultAction, FaultPlan, Strategy};

/// Physics and numerics of one simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Nozzle geometry / mesh resolution.
    pub nozzle: NozzleSpec,
    /// Real number density of H at the inlet (1/m³).
    pub density_h: f64,
    /// Real number density of H⁺ at the inlet (1/m³).
    pub density_hplus: f64,
    /// Scaling factor for H (real per simulation particle).
    pub weight_h: f64,
    /// Scaling factor for H⁺.
    pub weight_hplus: f64,
    /// Injection drift speed (m/s); paper: 10 000 m/s.
    pub v_drift: f64,
    /// Injection gas temperature (K).
    pub t_inject: f64,
    /// Wall temperature (K); paper: 300 K.
    pub t_wall: f64,
    /// DSMC timestep (s).
    pub dt_dsmc: f64,
    /// PIC timesteps per DSMC timestep (`R`); paper: 2.
    pub pic_per_dsmc: usize,
    /// Uniform magnetic flux density (T). The paper's electrostatic
    /// default is zero; a constant user-supplied B is also supported
    /// (§III-C) and handled by the Boris rotation.
    pub b_field: mesh::Vec3,
    /// Enable cross-species MEX/CEX collisions between H and H⁺.
    pub cross_collisions: bool,
    /// DSMC subcycles per engine step (`k_sub_dsmc` of the scenario
    /// format): the neutral move/exchange/collide phases run this many
    /// times per step at `dt_dsmc / k_sub_dsmc` each, while the PIC
    /// sub-stepping is unchanged. 1 (the default) routes through the
    /// exact pre-subcycling code path, bit for bit.
    pub k_sub_dsmc: usize,
    /// Partial-pump survival probability at wall hits during the
    /// neutral (DSMC) move: `0 = full pump` (every wall hit absorbs
    /// the particle), `1 = no pump` (every wall hit diffusely
    /// reflects, as without pumping). `None` disables the pump
    /// machinery entirely — the bit-identical legacy path.
    pub pump_prob: Option<f64>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            nozzle: NozzleSpec::default(),
            density_h: 7e18,
            density_hplus: 3e8,
            weight_h: 1e12,
            weight_hplus: 6000.0,
            v_drift: 1e4,
            t_inject: 1000.0,
            t_wall: 300.0,
            dt_dsmc: 2e-7,
            pic_per_dsmc: 2,
            b_field: mesh::Vec3::ZERO,
            cross_collisions: false,
            k_sub_dsmc: 1,
            pump_prob: None,
            seed: 42,
        }
    }
}

impl SimConfig {
    /// PIC timestep (s) = `dt_dsmc / pic_per_dsmc`.
    pub fn dt_pic(&self) -> f64 {
        self.dt_dsmc / self.pic_per_dsmc as f64
    }
}

/// One of the paper's six datasets (Table I), possibly scaled down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Dataset {
    D1,
    D2,
    D3,
    D4,
    D5,
    D6,
}

impl Dataset {
    /// Paper Table I: number of PIC cells.
    pub fn paper_pic_cells(self) -> usize {
        match self {
            Dataset::D1 => 55_576,
            Dataset::D2 | Dataset::D3 | Dataset::D4 => 583_386,
            Dataset::D5 | Dataset::D6 => 2_242_948,
        }
    }

    /// Paper Table I: scaling factors (H, H⁺).
    pub fn paper_factors(self) -> (f64, f64) {
        match self {
            Dataset::D1 => (1.000e12, 6000.0),
            Dataset::D2 => (9.940e10, 0.477),
            Dataset::D3 => (9.940e11, 4.77),
            Dataset::D4 => (1.988e11, 0.954),
            Dataset::D5 => (1.400e11, 12_500.0),
            Dataset::D6 => (2.800e11, 25_000.0),
        }
    }

    /// Approximate simulation-particle population the paper runs for
    /// this dataset (H, H⁺) — used to derive scaled-down populations.
    pub fn paper_particles(self) -> (f64, f64) {
        match self {
            Dataset::D1 => (1e7, 5e4),
            Dataset::D2 => (1e9, 1e8),
            Dataset::D3 => (1e8, 1e7),
            Dataset::D4 => (5e8, 5e7),
            Dataset::D5 => (1e9, 1e8),
            Dataset::D6 => (5e8, 5e7),
        }
    }

    /// Base mesh resolution and target steady-state particle
    /// populations `(nd, nz, target_H, target_H+)` at scale 1.0.
    fn base_params(self) -> (usize, usize, f64, f64) {
        match self {
            Dataset::D1 => (8, 16, 40_000.0, 4_000.0),
            Dataset::D2 => (10, 22, 120_000.0, 12_000.0),
            Dataset::D3 => (10, 22, 12_000.0, 1_200.0),
            Dataset::D4 => (10, 22, 60_000.0, 6_000.0),
            Dataset::D5 => (14, 30, 120_000.0, 12_000.0),
            Dataset::D6 => (14, 30, 60_000.0, 6_000.0),
        }
    }

    /// Target simulation-particle populations `(H, H⁺)` at `scale`.
    pub fn targets(self, scale: f64) -> (f64, f64) {
        let (_, _, th, ti) = self.base_params();
        ((th * scale).max(500.0), (ti * scale).max(50.0))
    }

    /// Work-boost factor for the cluster cost model: how many
    /// paper-scale simulation particles each of our simulation
    /// particles stands for. The modelled run executes the real
    /// algorithm on the scaled population and charges `boost ×` the
    /// per-particle work, preserving the measured *distribution* of
    /// work across ranks while restoring the paper-scale ratio of
    /// particle work to grid work (documented in DESIGN.md §5).
    pub fn work_boost(self, scale: f64) -> f64 {
        let (paper_h, _) = self.paper_particles();
        let (target_h, _) = self.targets(scale);
        (paper_h / target_h).max(1.0)
    }

    /// Build a runnable configuration scaled down by `scale`
    /// (1.0 = the largest size we run locally; smaller = cheaper).
    ///
    /// Mesh resolution and target particle populations scale
    /// together; all experiments compare configurations at the *same*
    /// scale, so relative results are preserved.
    pub fn config(self, scale: f64) -> SimConfig {
        assert!(scale > 0.0 && scale <= 1.0);
        let (nd, nz, _, _) = self.base_params();
        let (target_h, target_ion) = self.targets(scale);
        let lin = scale.cbrt();
        let nd = ((nd as f64 * lin).round() as usize).max(4);
        let nz = ((nz as f64 * lin).round() as usize).max(6);

        let nozzle = NozzleSpec {
            nd,
            nz,
            ..NozzleSpec::default()
        };

        // Choose weights so the steady-state population approaches the
        // targets: particles ≈ n · A · v · t_res / w with residence
        // time t_res = L / v.
        let area = std::f64::consts::PI * nozzle.inlet_radius * nozzle.inlet_radius;
        let base = SimConfig::default();
        let flux_h = base.density_h * area * base.v_drift;
        let flux_ion = base.density_hplus.max(1e8) * area * base.v_drift;
        let t_res = nozzle.length / base.v_drift;
        let weight_h = flux_h * t_res / target_h;
        let weight_hplus = (flux_ion * t_res / target_ion).max(1e-6);

        // Timestep sized to a quarter coarse cell per DSMC step: the
        // paper simulates an *unsteady* filling plume whose transit
        // takes hundreds of steps (Fig. 5 still shows ~90% of
        // particles near the inlet at step 200), so the timestep must
        // be small relative to the transit time.
        let dt_dsmc = nozzle.hz() / base.v_drift / 4.0;

        SimConfig {
            nozzle,
            weight_h,
            weight_hplus,
            dt_dsmc,
            ..base
        }
    }
}

/// Observability settings of a run (see the `obs` crate and
/// DESIGN.md §11). The default observes nothing and is bit-identical
/// to an unobserved run: the drivers' physics never reads either
/// field.
#[derive(Debug, Clone, Default)]
pub struct ObsConfig {
    /// Metrics registry the run taps (phase times, exchange traffic,
    /// rebalances, kernel-pool busy time). Keep a clone to read the
    /// snapshot after the run; `None` records no metrics.
    pub metrics: Option<Registry>,
    /// Where the structured trace (one event per step, exchange and
    /// rebalance) goes. [`TraceSpec::Off`] by default.
    pub trace: TraceSpec,
    /// Trailing window (in engine steps) for time-averaged field
    /// diagnostics (`density_h`, `phi`) kept by the serial and
    /// modelled drivers' [`obs::Recorder`]. 0 (the default) disables
    /// sampling entirely; like the rest of `ObsConfig`, the value
    /// never feeds back into the physics.
    pub avg_window: usize,
}

/// What the threaded driver does when a rank dies mid-run (a
/// [`vmpi::CommError`] latched by any rank: a chaos-injected kill, an
/// exhausted retry budget, or a genuinely wedged peer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultPolicy {
    /// Tear the world down and surface the failure to the caller
    /// (the default — matches MPI's abort-on-error discipline).
    #[default]
    Abort,
    /// Tear the world down, restore every rank from the last
    /// consistent checkpoint (step 0 if none was taken yet) and replay
    /// to completion. Requires `checkpoint_every > 0` to make forward
    /// progress past the first faulty step; see DESIGN.md §12 for the
    /// bitwise-determinism argument.
    RestartFromCheckpoint,
}

/// Why a [`RunConfigBuilder`] rejected its inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `ranks` was 0 — every run needs at least one rank.
    ZeroRanks,
    /// `threads_per_rank` was 0 — kernel pools need at least one lane.
    ZeroThreads,
    /// The rebalance cadence (`t_interval`) was 0 — Algorithm 1 checks
    /// at most once per step, so the interval must be >= 1.
    ZeroRebalanceInterval,
    /// The rebalance lii threshold was NaN or negative; `lii >= 1` by
    /// construction, so any finite value >= 0 is accepted.
    InvalidRebalanceThreshold,
    /// `sim.k_sub_dsmc` was 0 — the DSMC phases run at least once per
    /// engine step.
    ZeroDsmcSubcycle,
    /// `sim.pump_prob` was set outside `[0, 1]` (or non-finite); it is
    /// a survival probability.
    InvalidPumpProb,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroRanks => write!(f, "ranks must be >= 1"),
            ConfigError::ZeroThreads => write!(f, "threads_per_rank must be >= 1"),
            ConfigError::ZeroRebalanceInterval => {
                write!(f, "rebalance t_interval must be >= 1")
            }
            ConfigError::InvalidRebalanceThreshold => {
                write!(f, "rebalance threshold must be finite and >= 0")
            }
            ConfigError::ZeroDsmcSubcycle => {
                write!(f, "k_sub_dsmc must be >= 1")
            }
            ConfigError::InvalidPumpProb => {
                write!(f, "pump_prob must lie in [0, 1]")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Complete experiment setup: physics + parallel strategy + balancer.
#[derive(Debug, Clone)]
pub struct RunConfig {
    pub sim: SimConfig,
    /// Communication strategy for every particle exchange (DSMC, PIC
    /// and rebalance migration). Concrete strategies (`Centralized`,
    /// `Distributed`, `Sparse`) run as configured; [`Strategy::Auto`]
    /// re-picks among them before each exchange from the
    /// rank-0-reduced migration byte matrix and the machine cost
    /// model. The choice only changes the message schedule — every
    /// strategy delivers identical buffers in identical source order,
    /// so outputs are bitwise independent of this field.
    pub strategy: Strategy,
    /// Dynamic load balancing on/off + parameters (trigger cadence,
    /// lii threshold, cost source, remap options).
    pub rebalance: Option<RebalanceConfig>,
    /// How the run splits work across ranks: one unified
    /// particle+field partition (paper default) or the
    /// Eulerian/Lagrangian split with a statically block-partitioned
    /// field grid. Under the split, the charge-density reduction runs
    /// as a gather/scatter through the field owners (rank-ordered
    /// sums, so results stay bitwise identical to the unified
    /// reduction) and the balancer weighs particles only.
    pub decomposition: Decomposition,
    /// Number of (virtual or threaded) ranks.
    pub ranks: usize,
    /// Ranks per node for [`Strategy::Hier`]'s two-level aggregation
    /// (consecutive ranks share a node). 0 = auto: split the world
    /// into two equal halves ([`vmpi::NodeMap::default_for`]). Like
    /// the strategy itself, the grouping only changes the message
    /// schedule, never the delivered buffers.
    pub ranks_per_node: usize,
    /// Overlap the hierarchical exchange with interior work: after
    /// the phase-1 sends are in flight, the rank compacts its
    /// particle buffer and pre-buckets the survivors for the collide
    /// phase before draining receives. Only RNG-free work is
    /// overlapped, so outputs stay bitwise identical to the
    /// non-overlapped path. Takes effect only under
    /// [`Strategy::Hier`].
    pub overlap: bool,
    /// DSMC steps to run.
    pub steps: usize,
    /// Cost-model particle work boost (see [`Dataset::work_boost`]).
    pub work_boost: f64,
    /// Paper-scale fine (PIC) cell count for the cost model's grid
    /// work (Poisson, partitioner); `None` disables grid boosting.
    pub paper_cells: Option<usize>,
    /// Intra-rank worker threads for the hot kernels (move, collide,
    /// deposit, push, SpMV). The default of 1 routes every kernel
    /// through the untouched serial code path with the rank's own RNG,
    /// reproducing pre-existing results bit for bit.
    pub threads_per_rank: usize,
    /// Re-sort particles into cell order every this many DSMC steps
    /// (counting sort, amortised scratch); 0 disables. Sorting changes
    /// particle iteration order — and hence RNG consumption — so the
    /// default is off to keep default outputs unchanged.
    pub sort_every: usize,
    /// Observability: metrics registry + trace sink selection.
    pub obs: ObsConfig,
    /// Take an in-memory per-rank checkpoint every this many DSMC
    /// steps (0 = never). Checkpoints are only taken at fault-free
    /// step boundaries, so every stored state is a consistent restart
    /// point for [`FaultPolicy::RestartFromCheckpoint`].
    pub checkpoint_every: usize,
    /// Reaction to a detected rank death (see [`FaultPolicy`]).
    pub on_fault: FaultPolicy,
    /// Deterministic fault injection for the threaded driver: when
    /// set, every rank's transport is wrapped in
    /// [`vmpi::ChaosComm`] (applying this plan) under
    /// [`vmpi::ReliableComm`] (recovering from it). `None` runs on the
    /// raw transport, bit-identical to pre-chaos builds.
    pub fault_plan: Option<FaultPlan>,
}

/// Version tag of the canonical config serialization (independent of
/// the report/trace [`obs::SCHEMA_VERSION`]). Bump whenever the set
/// of serialized fields or their encoding changes — the tag is hashed
/// along with the fields, so configs canonicalized under different
/// schema versions can never collide in the result cache.
pub const CONFIG_SCHEMA_VERSION: u32 = 2;

/// FNV-1a over a byte string — the same hash the guard tests use for
/// density fields, here over the canonical config text.
fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Stable lowercase name of an exchange strategy for the canonical
/// serialization (enum `Debug` output is not a schema).
fn strategy_name(s: Strategy) -> &'static str {
    match s {
        Strategy::Centralized => "centralized",
        Strategy::Distributed => "distributed",
        Strategy::Sparse => "sparse",
        Strategy::Hier => "hier",
        Strategy::Auto => "auto",
    }
}

fn fault_action_json(a: FaultAction) -> Json {
    match a {
        FaultAction::Deliver => Json::Str("deliver".to_string()),
        FaultAction::Drop => Json::Str("drop".to_string()),
        FaultAction::Duplicate => Json::Str("duplicate".to_string()),
        FaultAction::Delay(span) => obj(vec![("delay", Json::U64(span as u64))]),
    }
}

impl RunConfig {
    /// Validating builder — the preferred way to assemble a run:
    /// `RunConfig::builder().ranks(8).strategy(Strategy::Auto).build()?`.
    pub fn builder() -> RunConfigBuilder {
        RunConfigBuilder::default()
    }

    /// The canonical serialization of this configuration: every field
    /// that can influence the run's *output* (physics, seeds, parallel
    /// shape, exchange strategy, balancing, fault plan and recovery
    /// settings), tagged with [`CONFIG_SCHEMA_VERSION`] and with
    /// object keys sorted at every level, so the serialized text — and
    /// hence [`RunConfig::config_hash`] — is independent of field
    /// declaration order.
    ///
    /// The [`ObsConfig`] is deliberately **excluded**: observability
    /// is bitwise-neutral by contract (the obs guard suite pins
    /// observed runs to unobserved hashes), so two runs differing only
    /// in metrics/trace wiring are the same cache entry.
    pub fn canonical_json(&self) -> Json {
        let sim = &self.sim;
        let nozzle = obj(vec![
            ("radius", Json::Num(sim.nozzle.radius)),
            ("length", Json::Num(sim.nozzle.length)),
            ("inlet_radius", Json::Num(sim.nozzle.inlet_radius)),
            ("nd", Json::U64(sim.nozzle.nd as u64)),
            ("nz", Json::U64(sim.nozzle.nz as u64)),
        ]);
        let sim_json = obj(vec![
            ("nozzle", nozzle),
            ("density_h", Json::Num(sim.density_h)),
            ("density_hplus", Json::Num(sim.density_hplus)),
            ("weight_h", Json::Num(sim.weight_h)),
            ("weight_hplus", Json::Num(sim.weight_hplus)),
            ("v_drift", Json::Num(sim.v_drift)),
            ("t_inject", Json::Num(sim.t_inject)),
            ("t_wall", Json::Num(sim.t_wall)),
            ("dt_dsmc", Json::Num(sim.dt_dsmc)),
            ("pic_per_dsmc", Json::U64(sim.pic_per_dsmc as u64)),
            (
                "b_field",
                obj(vec![
                    ("x", Json::Num(sim.b_field.x)),
                    ("y", Json::Num(sim.b_field.y)),
                    ("z", Json::Num(sim.b_field.z)),
                ]),
            ),
            ("cross_collisions", Json::Bool(sim.cross_collisions)),
            ("k_sub_dsmc", Json::U64(sim.k_sub_dsmc as u64)),
            ("pump_prob", sim.pump_prob.map_or(Json::Null, Json::Num)),
            ("seed", Json::U64(sim.seed)),
        ]);
        let rebalance = match &self.rebalance {
            None => Json::Null,
            Some(rb) => obj(vec![
                ("t_interval", Json::U64(rb.t_interval as u64)),
                ("threshold", Json::Num(rb.threshold)),
                (
                    "wlm",
                    obj(vec![
                        ("r", Json::Num(rb.wlm.r as f64)),
                        ("w_cell", Json::Num(rb.wlm.w_cell as f64)),
                    ]),
                ),
                ("use_km", Json::Bool(rb.use_km)),
                (
                    "kway",
                    obj(vec![
                        ("coarsen_to", Json::U64(rb.kway.coarsen_to as u64)),
                        ("refine_passes", Json::U64(rb.kway.refine_passes as u64)),
                        ("seed", Json::U64(rb.kway.seed)),
                    ]),
                ),
                ("cost_source", Json::Str(rb.cost_source.name().to_string())),
            ]),
        };
        let fault_plan = match &self.fault_plan {
            None => Json::Null,
            Some(plan) => obj(vec![
                ("seed", Json::U64(plan.seed)),
                ("drop_per_mille", Json::U64(plan.drop_per_mille as u64)),
                ("dup_per_mille", Json::U64(plan.dup_per_mille as u64)),
                ("delay_per_mille", Json::U64(plan.delay_per_mille as u64)),
                ("max_delay_span", Json::U64(plan.max_delay_span as u64)),
                (
                    "explicit",
                    Json::Arr(
                        plan.explicit
                            .iter()
                            .map(|&(src, dst, idx, action)| {
                                obj(vec![
                                    ("src", Json::U64(src as u64)),
                                    ("dst", Json::U64(dst as u64)),
                                    ("index", Json::U64(idx)),
                                    ("action", fault_action_json(action)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "stalls",
                    Json::Arr(
                        plan.stalls
                            .iter()
                            .map(|s| {
                                obj(vec![
                                    ("rank", Json::U64(s.rank as u64)),
                                    ("step", Json::U64(s.step as u64)),
                                    ("millis", Json::U64(s.millis)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "kills",
                    Json::Arr(
                        plan.kills
                            .iter()
                            .map(|k| {
                                obj(vec![
                                    ("rank", Json::U64(k.rank as u64)),
                                    ("step", Json::U64(k.step as u64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        };
        let doc = obj(vec![
            ("config_schema", Json::U64(CONFIG_SCHEMA_VERSION as u64)),
            ("sim", sim_json),
            (
                "strategy",
                Json::Str(strategy_name(self.strategy).to_string()),
            ),
            ("rebalance", rebalance),
            (
                "decomposition",
                Json::Str(self.decomposition.name().to_string()),
            ),
            ("ranks", Json::U64(self.ranks as u64)),
            ("ranks_per_node", Json::U64(self.ranks_per_node as u64)),
            ("overlap", Json::Bool(self.overlap)),
            ("steps", Json::U64(self.steps as u64)),
            ("work_boost", Json::Num(self.work_boost)),
            (
                "paper_cells",
                self.paper_cells.map_or(Json::Null, |c| Json::U64(c as u64)),
            ),
            ("threads_per_rank", Json::U64(self.threads_per_rank as u64)),
            ("sort_every", Json::U64(self.sort_every as u64)),
            ("checkpoint_every", Json::U64(self.checkpoint_every as u64)),
            (
                "on_fault",
                Json::Str(
                    match self.on_fault {
                        FaultPolicy::Abort => "abort",
                        FaultPolicy::RestartFromCheckpoint => "restart_from_checkpoint",
                    }
                    .to_string(),
                ),
            ),
            ("fault_plan", fault_plan),
        ]);
        obs::json::canonicalize(&doc)
    }

    /// [`RunConfig::canonical_json`] rendered to its one canonical
    /// string — what [`RunConfig::config_hash`] hashes, and a stable
    /// line users can log next to a served report.
    pub fn canonical_string(&self) -> String {
        self.canonical_json().to_string()
    }

    /// Order-independent, version-tagged 64-bit digest of the
    /// canonical serialization (FNV-1a over
    /// [`RunConfig::canonical_string`]). Two configs hash equal iff
    /// they would produce bitwise-identical runs' inputs — the result
    /// cache in `jobsrv` keys on exactly this value, which is sound
    /// because the engine is deterministic for a fixed config.
    pub fn config_hash(&self) -> u64 {
        fnv1a_bytes(self.canonical_string().as_bytes())
    }

    /// [`RunConfig::config_hash`] as the 16-digit hex string used in
    /// report JSON and logs.
    pub fn config_hash_hex(&self) -> String {
        format!("{:016x}", self.config_hash())
    }

    /// Standard paper-experiment setup: dataset at `scale`, with the
    /// matching work boost for the cost model. Equivalent to
    /// `RunConfig::builder().paper(dataset, scale).ranks(ranks)`.
    ///
    /// # Panics
    /// If `ranks == 0` (use [`RunConfig::builder`] for fallible
    /// validation).
    pub fn paper(dataset: Dataset, scale: f64, ranks: usize) -> Self {
        RunConfig::builder()
            .paper(dataset, scale)
            .ranks(ranks)
            .build()
            .expect("ranks >= 1")
    }
}

/// Builder for [`RunConfig`] with validation at [`build`] time.
///
/// Defaults: [`SimConfig::default`] physics, Distributed strategy,
/// rebalancing on with default parameters, 1 rank, 100 steps, no cost
/// boosts, 1 thread per rank, sorting off, no observability.
///
/// [`build`]: RunConfigBuilder::build
#[derive(Debug, Clone)]
pub struct RunConfigBuilder {
    run: RunConfig,
}

impl Default for RunConfigBuilder {
    fn default() -> Self {
        RunConfigBuilder {
            run: RunConfig {
                sim: SimConfig::default(),
                strategy: Strategy::Distributed,
                rebalance: Some(RebalanceConfig::default()),
                decomposition: Decomposition::default(),
                ranks: 1,
                ranks_per_node: 0,
                overlap: false,
                steps: 100,
                work_boost: 1.0,
                paper_cells: None,
                threads_per_rank: 1,
                sort_every: 0,
                obs: ObsConfig::default(),
                checkpoint_every: 0,
                on_fault: FaultPolicy::default(),
                fault_plan: None,
            },
        }
    }
}

impl RunConfigBuilder {
    /// Set the physics/numerics configuration wholesale.
    pub fn sim(mut self, sim: SimConfig) -> Self {
        self.run.sim = sim;
        self
    }

    /// Use `dataset` scaled by `scale`, with the matching cost-model
    /// work boost and paper-scale cell count (the standard experiment
    /// setup).
    pub fn paper(mut self, dataset: Dataset, scale: f64) -> Self {
        self.run.sim = dataset.config(scale);
        self.run.work_boost = dataset.work_boost(scale);
        self.run.paper_cells = Some(dataset.paper_pic_cells());
        self
    }

    /// RNG seed (convenience for `sim.seed`).
    pub fn seed(mut self, seed: u64) -> Self {
        self.run.sim.seed = seed;
        self
    }

    /// DSMC subcycles per engine step (convenience for
    /// `sim.k_sub_dsmc`). Validated at [`build`](Self::build): must be
    /// >= 1; 1 is the bit-identical legacy path.
    pub fn k_sub_dsmc(mut self, k: usize) -> Self {
        self.run.sim.k_sub_dsmc = k;
        self
    }

    /// Partial-pump wall survival probability (convenience for
    /// `sim.pump_prob`): `0 = full pump, 1 = no pump`. Validated at
    /// [`build`](Self::build): must lie in `[0, 1]`.
    pub fn pump_prob(mut self, p: f64) -> Self {
        self.run.sim.pump_prob = Some(p);
        self
    }

    /// Exchange strategy for every particle migration.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.run.strategy = strategy;
        self
    }

    /// Dynamic load balancing settings (`None` disables).
    pub fn rebalance(mut self, rebalance: Option<RebalanceConfig>) -> Self {
        self.run.rebalance = rebalance;
        self
    }

    /// Rebalance trigger cadence: check at most every `t` DSMC steps
    /// (Algorithm 1's `T`). Enables balancing with defaults if it was
    /// disabled. Validated at [`build`](Self::build): `t` must be
    /// >= 1.
    pub fn rebalance_every(mut self, t: usize) -> Self {
        self.run
            .rebalance
            .get_or_insert_with(Default::default)
            .t_interval = t;
        self
    }

    /// Rebalance trigger threshold on the measured lii. Enables
    /// balancing with defaults if it was disabled. Validated at
    /// [`build`](Self::build): must be finite and >= 0.
    pub fn rebalance_threshold(mut self, threshold: f64) -> Self {
        self.run
            .rebalance
            .get_or_insert_with(Default::default)
            .threshold = threshold;
        self
    }

    /// Cost source feeding the balancer's partition weights (analytic
    /// paper wlm or EWMA-smoothed measured timers). Enables balancing
    /// with defaults if it was disabled.
    pub fn cost_source(mut self, kind: CostSourceKind) -> Self {
        self.run
            .rebalance
            .get_or_insert_with(Default::default)
            .cost_source = kind;
        self
    }

    /// Decomposition mode: unified particle+field partition (default)
    /// or the Eulerian/Lagrangian split.
    pub fn decomposition(mut self, decomposition: Decomposition) -> Self {
        self.run.decomposition = decomposition;
        self
    }

    /// Number of (virtual or threaded) ranks. Must be >= 1.
    pub fn ranks(mut self, ranks: usize) -> Self {
        self.run.ranks = ranks;
        self
    }

    /// DSMC steps to run.
    pub fn steps(mut self, steps: usize) -> Self {
        self.run.steps = steps;
        self
    }

    /// Ranks per node for the hierarchical exchange (0 = auto, two
    /// equal halves).
    pub fn ranks_per_node(mut self, rpn: usize) -> Self {
        self.run.ranks_per_node = rpn;
        self
    }

    /// Overlap the hierarchical exchange with RNG-free interior work
    /// (compaction + collision pre-bucketing). Bitwise-neutral; only
    /// effective under [`Strategy::Hier`].
    pub fn overlap(mut self, overlap: bool) -> Self {
        self.run.overlap = overlap;
        self
    }

    /// Cost-model particle work boost (see [`Dataset::work_boost`]).
    pub fn work_boost(mut self, boost: f64) -> Self {
        self.run.work_boost = boost;
        self
    }

    /// Paper-scale fine (PIC) cell count for the cost model.
    pub fn paper_cells(mut self, cells: Option<usize>) -> Self {
        self.run.paper_cells = cells;
        self
    }

    /// Intra-rank worker threads for the hot kernels. Must be >= 1
    /// (1 = the bit-identical serial code path).
    pub fn threads_per_rank(mut self, threads: usize) -> Self {
        self.run.threads_per_rank = threads;
        self
    }

    /// Re-sort particles into cell order every `n` DSMC steps (0 =
    /// off). Determinism note: sorting changes particle iteration
    /// order and hence RNG consumption, so any non-zero value changes
    /// outputs relative to the default — statistically, not
    /// physically.
    pub fn sort_every(mut self, n: usize) -> Self {
        self.run.sort_every = n;
        self
    }

    /// Tap this metrics registry during the run.
    pub fn metrics(mut self, registry: Registry) -> Self {
        self.run.obs.metrics = Some(registry);
        self
    }

    /// Send the structured trace to this sink specification.
    pub fn trace(mut self, trace: TraceSpec) -> Self {
        self.run.obs.trace = trace;
        self
    }

    /// Keep trailing time-averaged field diagnostics over this many
    /// engine steps (0 = off, the default).
    pub fn avg_window(mut self, window: usize) -> Self {
        self.run.obs.avg_window = window;
        self
    }

    /// In-memory per-rank checkpoint cadence in DSMC steps (0 = off).
    pub fn checkpoint_every(mut self, steps: usize) -> Self {
        self.run.checkpoint_every = steps;
        self
    }

    /// Reaction to a detected rank death (see [`FaultPolicy`]).
    pub fn on_fault(mut self, policy: FaultPolicy) -> Self {
        self.run.on_fault = policy;
        self
    }

    /// Inject this deterministic fault plan into every rank's
    /// transport (threaded driver only; `None` = clean wire).
    pub fn fault_plan(mut self, plan: Option<FaultPlan>) -> Self {
        self.run.fault_plan = plan;
        self
    }

    /// Validate and produce the [`RunConfig`].
    pub fn build(self) -> Result<RunConfig, ConfigError> {
        if self.run.ranks == 0 {
            return Err(ConfigError::ZeroRanks);
        }
        if self.run.threads_per_rank == 0 {
            return Err(ConfigError::ZeroThreads);
        }
        if let Some(rb) = &self.run.rebalance {
            if rb.t_interval == 0 {
                return Err(ConfigError::ZeroRebalanceInterval);
            }
            if !rb.threshold.is_finite() || rb.threshold < 0.0 {
                return Err(ConfigError::InvalidRebalanceThreshold);
            }
        }
        if self.run.sim.k_sub_dsmc == 0 {
            return Err(ConfigError::ZeroDsmcSubcycle);
        }
        if let Some(p) = self.run.sim.pump_prob {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(ConfigError::InvalidPumpProb);
            }
        }
        Ok(self.run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table1_reproduced() {
        assert_eq!(Dataset::D1.paper_pic_cells(), 55_576);
        assert_eq!(Dataset::D5.paper_pic_cells(), 2_242_948);
        let (h, ion) = Dataset::D2.paper_factors();
        assert_eq!(h, 9.94e10);
        assert_eq!(ion, 0.477);
    }

    #[test]
    fn scaled_configs_shrink_with_scale() {
        let big = Dataset::D2.config(1.0);
        let small = Dataset::D2.config(0.1);
        assert!(small.nozzle.nd <= big.nozzle.nd);
        assert!(
            small.weight_h > big.weight_h,
            "fewer particles = larger weight"
        );
    }

    #[test]
    fn dataset5_has_bigger_grid_than_dataset2() {
        let d2 = Dataset::D2.config(1.0);
        let d5 = Dataset::D5.config(1.0);
        assert!(d5.nozzle.nd > d2.nozzle.nd);
    }

    #[test]
    fn d3_has_fewer_particles_than_d2() {
        // paper: dataset 3 = dataset 2 grid with 10x fewer particles
        let d2 = Dataset::D2.config(0.5);
        let d3 = Dataset::D3.config(0.5);
        assert_eq!(d2.nozzle.nd, d3.nozzle.nd);
        assert!(d3.weight_h > d2.weight_h * 5.0);
    }

    #[test]
    fn pic_timestep_half_of_dsmc_at_r2() {
        let c = SimConfig::default();
        assert_eq!(c.pic_per_dsmc, 2);
        assert!((c.dt_pic() - c.dt_dsmc / 2.0).abs() < 1e-20);
    }

    #[test]
    fn builder_validates_and_matches_paper_shorthand() {
        let built = RunConfig::builder()
            .paper(Dataset::D1, 0.02)
            .ranks(3)
            .strategy(Strategy::Auto)
            .threads_per_rank(4)
            .steps(12)
            .build()
            .unwrap();
        let shorthand = RunConfig::paper(Dataset::D1, 0.02, 3);
        assert_eq!(built.work_boost, shorthand.work_boost);
        assert_eq!(built.paper_cells, shorthand.paper_cells);
        assert_eq!(built.ranks, 3);
        assert_eq!(built.strategy, Strategy::Auto);
        assert_eq!(built.threads_per_rank, 4);
        assert_eq!(built.steps, 12);
        assert!(built.obs.metrics.is_none());
        assert!(built.obs.trace.is_off());
    }

    #[test]
    fn builder_rejects_zero_ranks_and_threads() {
        assert_eq!(
            RunConfig::builder().ranks(0).build().unwrap_err(),
            ConfigError::ZeroRanks
        );
        assert_eq!(
            RunConfig::builder()
                .threads_per_rank(0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroThreads
        );
        assert!(ConfigError::ZeroRanks.to_string().contains("ranks"));
    }

    #[test]
    fn builder_carries_fault_and_recovery_settings() {
        let run = RunConfig::builder()
            .checkpoint_every(4)
            .on_fault(FaultPolicy::RestartFromCheckpoint)
            .fault_plan(Some(FaultPlan::seeded(7).drops(30)))
            .build()
            .unwrap();
        assert_eq!(run.checkpoint_every, 4);
        assert_eq!(run.on_fault, FaultPolicy::RestartFromCheckpoint);
        assert!(run.fault_plan.is_some());
        // defaults: no checkpoints, abort on fault, clean wire
        let plain = RunConfig::builder().build().unwrap();
        assert_eq!(plain.checkpoint_every, 0);
        assert_eq!(plain.on_fault, FaultPolicy::Abort);
        assert!(plain.fault_plan.is_none());
    }

    #[test]
    fn builder_carries_hier_settings() {
        let run = RunConfig::builder()
            .strategy(Strategy::Hier)
            .ranks(4)
            .ranks_per_node(2)
            .overlap(true)
            .build()
            .unwrap();
        assert_eq!(run.ranks_per_node, 2);
        assert!(run.overlap);
        // defaults: auto node map, no overlap
        let plain = RunConfig::builder().build().unwrap();
        assert_eq!(plain.ranks_per_node, 0);
        assert!(!plain.overlap);
    }

    #[test]
    fn builder_validates_rebalance_trigger() {
        assert_eq!(
            RunConfig::builder().rebalance_every(0).build().unwrap_err(),
            ConfigError::ZeroRebalanceInterval
        );
        assert_eq!(
            RunConfig::builder()
                .rebalance_threshold(f64::NAN)
                .build()
                .unwrap_err(),
            ConfigError::InvalidRebalanceThreshold
        );
        assert_eq!(
            RunConfig::builder()
                .rebalance_threshold(-1.0)
                .build()
                .unwrap_err(),
            ConfigError::InvalidRebalanceThreshold
        );
        assert_eq!(
            RunConfig::builder()
                .rebalance_threshold(f64::INFINITY)
                .build()
                .unwrap_err(),
            ConfigError::InvalidRebalanceThreshold
        );
        assert!(ConfigError::ZeroRebalanceInterval
            .to_string()
            .contains("t_interval"));
        assert!(ConfigError::InvalidRebalanceThreshold
            .to_string()
            .contains("threshold"));
        // a zeroed trigger is fine when balancing is off entirely
        let mut rc = RebalanceConfig {
            t_interval: 0,
            ..RebalanceConfig::default()
        };
        rc.threshold = f64::NAN;
        let off = RunConfig::builder()
            .rebalance_every(0)
            .rebalance(None)
            .build();
        assert!(off.is_ok());
        assert!(RunConfig::builder().rebalance(Some(rc)).build().is_err());
    }

    #[test]
    fn builder_carries_rebalance_trigger_and_modes() {
        let run = RunConfig::builder()
            .rebalance_every(5)
            .rebalance_threshold(1.3)
            .cost_source(CostSourceKind::TimerAugmented)
            .decomposition(Decomposition::EulLag)
            .build()
            .unwrap();
        let rb = run.rebalance.expect("balancing enabled");
        assert_eq!(rb.t_interval, 5);
        assert_eq!(rb.threshold, 1.3);
        assert_eq!(rb.cost_source, CostSourceKind::TimerAugmented);
        assert_eq!(run.decomposition, Decomposition::EulLag);
        // the trigger setters enable balancing even after .rebalance(None)
        let revived = RunConfig::builder()
            .rebalance(None)
            .rebalance_every(7)
            .build()
            .unwrap();
        assert_eq!(revived.rebalance.unwrap().t_interval, 7);
        // defaults: paper wlm + unified, paper trigger values
        let plain = RunConfig::builder().build().unwrap();
        let prb = plain.rebalance.unwrap();
        assert_eq!(prb.cost_source, CostSourceKind::PaperWlm);
        assert_eq!(prb.t_interval, 20);
        assert_eq!(prb.threshold, 2.0);
        assert_eq!(plain.decomposition, Decomposition::Unified);
    }

    #[test]
    fn builder_carries_observability() {
        let reg = Registry::new();
        let run = RunConfig::builder()
            .metrics(reg.clone())
            .trace(TraceSpec::Memory(obs::MemorySink::new()))
            .build()
            .unwrap();
        assert!(run.obs.metrics.is_some());
        assert!(!run.obs.trace.is_off());
        // RunConfig stays Clone with observability attached
        let _copy = run.clone();
    }

    #[test]
    fn canonical_string_roundtrips_and_is_canonical() {
        let run = RunConfig::builder()
            .paper(Dataset::D1, 0.02)
            .ranks(3)
            .seed(4242)
            .steps(12)
            .fault_plan(Some(
                vmpi::FaultPlan::seeded(7)
                    .drops(10)
                    .action(0, 1, 3, vmpi::FaultAction::Delay(2))
                    .stall(1, 4, 5)
                    .kill(2, 6),
            ))
            .on_fault(FaultPolicy::RestartFromCheckpoint)
            .build()
            .unwrap();
        let s = run.canonical_string();
        // Parse → canonicalize → re-render reproduces the exact string:
        // the serialization is already in canonical form.
        let parsed = obs::json::parse(&s).unwrap();
        assert_eq!(obs::json::canonicalize(&parsed).to_string(), s);
        // Version tag and the excluded obs field.
        assert_eq!(
            parsed.get("config_schema").unwrap().as_u64(),
            Some(CONFIG_SCHEMA_VERSION as u64)
        );
        assert!(parsed.get("obs").is_none());
        // Keys at the top level are sorted, so field declaration order
        // in the struct can never leak into the hash.
        if let obs::json::Json::Obj(members) = &parsed {
            let keys: Vec<&str> = members.iter().map(|(k, _)| k.as_str()).collect();
            let mut sorted = keys.clone();
            sorted.sort_unstable();
            assert_eq!(keys, sorted);
        } else {
            panic!("canonical form must be an object");
        }
    }

    #[test]
    fn config_hash_tracks_semantic_fields_only() {
        let base = || {
            RunConfig::builder()
                .paper(Dataset::D1, 0.02)
                .ranks(3)
                .seed(4242)
                .steps(12)
        };
        let a = base().build().unwrap();
        let b = base().build().unwrap();
        assert_eq!(a.config_hash(), b.config_hash());
        assert_eq!(a.config_hash_hex(), format!("{:016x}", a.config_hash()));
        // Observability is bitwise-neutral and excluded from the hash.
        let observed = base()
            .metrics(Registry::new())
            .trace(TraceSpec::Memory(obs::MemorySink::new()))
            .build()
            .unwrap();
        assert_eq!(observed.config_hash(), a.config_hash());
        // Every semantic knob moves the hash.
        let seeded = base().seed(4243).build().unwrap();
        assert_ne!(seeded.config_hash(), a.config_hash());
        let wider = base().ranks(4).build().unwrap();
        assert_ne!(wider.config_hash(), a.config_hash());
        let strat = base().strategy(Strategy::Sparse).build().unwrap();
        assert_ne!(strat.config_hash(), a.config_hash());
        let faulted = base()
            .fault_plan(Some(vmpi::FaultPlan::seeded(1).kill(0, 2)))
            .build()
            .unwrap();
        assert_ne!(faulted.config_hash(), a.config_hash());
    }

    #[test]
    fn builder_validates_subcycling_and_pump() {
        assert_eq!(
            RunConfig::builder().k_sub_dsmc(0).build().unwrap_err(),
            ConfigError::ZeroDsmcSubcycle
        );
        for bad in [-0.1, 1.1, f64::NAN, f64::INFINITY] {
            assert_eq!(
                RunConfig::builder().pump_prob(bad).build().unwrap_err(),
                ConfigError::InvalidPumpProb,
                "pump_prob {bad} must be rejected"
            );
        }
        let run = RunConfig::builder()
            .k_sub_dsmc(3)
            .pump_prob(0.25)
            .build()
            .unwrap();
        assert_eq!(run.sim.k_sub_dsmc, 3);
        assert_eq!(run.sim.pump_prob, Some(0.25));
        // defaults: single subcycle, pump machinery absent
        let plain = RunConfig::builder().build().unwrap();
        assert_eq!(plain.sim.k_sub_dsmc, 1);
        assert!(plain.sim.pump_prob.is_none());
        // boundary values are legal
        assert!(RunConfig::builder().pump_prob(0.0).build().is_ok());
        assert!(RunConfig::builder().pump_prob(1.0).build().is_ok());
        assert!(ConfigError::ZeroDsmcSubcycle
            .to_string()
            .contains("k_sub_dsmc"));
        assert!(ConfigError::InvalidPumpProb.to_string().contains("pump"));
        // both knobs move the canonical hash
        let base = RunConfig::builder().build().unwrap();
        assert_ne!(
            RunConfig::builder()
                .k_sub_dsmc(2)
                .build()
                .unwrap()
                .config_hash(),
            base.config_hash()
        );
        assert_ne!(
            RunConfig::builder()
                .pump_prob(1.0)
                .build()
                .unwrap()
                .config_hash(),
            base.config_hash()
        );
    }

    #[test]
    fn config_hash_is_pinned_across_releases() {
        // The cache key of the engine-guard config. If this moves, the
        // canonical serialization changed: bump CONFIG_SCHEMA_VERSION
        // and re-pin deliberately — silent drift would split result
        // caches across builds.
        let run = RunConfig::builder()
            .paper(Dataset::D1, 0.02)
            .ranks(3)
            .seed(4242)
            .steps(12)
            .rebalance(None)
            .build()
            .unwrap();
        assert_eq!(run.config_hash_hex(), run.config_hash_hex());
        assert_eq!(run.config_hash(), PINNED_GUARD_CONFIG_HASH);
    }

    /// Pinned canonical hash of the guard config (see
    /// `config_hash_is_pinned_across_releases`). Re-pinned with
    /// CONFIG_SCHEMA_VERSION 2 (`k_sub_dsmc` / `pump_prob` joined the
    /// canonical serialization).
    const PINNED_GUARD_CONFIG_HASH: u64 = 0x290ed242c422eff9;
}
