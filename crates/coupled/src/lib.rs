//! The coupled DSMC/PIC solver and experiment rig (paper §III, §VI).

pub mod checkpoint;
pub mod cluster;
pub mod config;
pub mod diag;
pub mod engine;
pub mod machine;
pub mod report;
pub mod state;
pub mod threadrun;
pub mod timers;
pub mod tune;

pub use checkpoint::{checkpoint, restore, CheckpointError};
pub use cluster::{ClusterReport, ClusterSim, ModelledBackend};
pub use config::{Dataset, RunConfig, SimConfig};
pub use engine::{
    Backend, BackendStats, ExchangeScratch, NoProbe, Probe, RankEngine, SerialBackend, StepOutcome,
    StepPipeline,
};
pub use machine::{CostModel, MachineProfile, Placement};
pub use report::{ReportBuilder, RunReport, StepTrace};
pub use state::{CoupledState, StepRecord};
pub use threadrun::{run_serial, run_threaded, ThreadedBackend, ThreadedRunResult};
pub use timers::{Breakdown, Phase, Stopwatch};
pub use tune::{
    tune_balancer, tune_strategy, StrategyPoint, StrategyTuneReport, TunePoint, TuneReport,
};
