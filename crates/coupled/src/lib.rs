//! The coupled DSMC/PIC solver and experiment rig (paper §III, §VI).
//!
//! Observability (metrics registry, hierarchical span timing,
//! structured trace sinks) lives in the `obs` crate; every driver
//! here feeds the same [`obs::Observer`] signals through the one
//! [`StepPipeline`]. See DESIGN.md §11 and [`prelude`] for the
//! recommended imports.

pub mod checkpoint;
pub mod cluster;
pub mod config;
pub mod diag;
pub mod engine;
pub mod job;
pub mod machine;
pub mod report;
pub mod scenario;
pub mod state;
pub mod threadrun;
pub mod timers;
pub mod tune;

/// One-stop imports for configuring runs, driving them (directly or
/// as jobs), and consuming their reports and traces:
///
/// ```
/// use coupled::prelude::*;
///
/// let run = RunConfig::builder()
///     .paper(Dataset::D1, 0.02)
///     .ranks(2)
///     .steps(2)
///     .build()
///     .unwrap();
/// let key = run.config_hash(); // result-cache identity of this run
/// let report: RunReport = run_threaded(&run);
/// assert_eq!(report.trace.len(), 2);
/// assert_eq!(key, run.config_hash());
/// ```
pub mod prelude {
    pub use crate::cluster::ClusterSim;
    pub use crate::config::{
        ConfigError, Dataset, FaultPolicy, ObsConfig, RunConfig, RunConfigBuilder, SimConfig,
        CONFIG_SCHEMA_VERSION,
    };
    pub use crate::job::{JobId, JobMeta, JobPriority, JobSpec, JobStatus};
    pub use crate::machine::MachineProfile;
    pub use crate::report::{ReportBuilder, RunReport, StepTrace};
    pub use crate::scenario::{Scenario, ScenarioError};
    pub use crate::threadrun::{
        run_serial, run_threaded, run_threaded_result, EngineSession, RunError,
    };
    pub use balance::CostSourceKind;
    pub use obs::{
        FanoutSink, MemorySink, MetricsSnapshot, Observer, Registry, TraceEvent, TraceSpec,
        SCHEMA_VERSION,
    };
    pub use partition::Decomposition;
    pub use vmpi::{FaultAction, FaultPlan, Strategy};
}

pub use balance::{CostSample, CostSource, CostSourceKind};
pub use checkpoint::{checkpoint, checkpoint_rank, restore, restore_rank, CheckpointError};
pub use cluster::{ClusterReport, ClusterSim, ModelledBackend};
pub use config::{
    ConfigError, Dataset, FaultPolicy, ObsConfig, RunConfig, RunConfigBuilder, SimConfig,
    CONFIG_SCHEMA_VERSION,
};
pub use engine::{
    Backend, BackendStats, ExchangeInfo, ExchangeScratch, NoProbe, Probe, ProbeAdapter, RankEngine,
    SerialBackend, StepComm, StepOutcome, StepPipeline, WallClock,
};
pub use job::{JobId, JobMeta, JobPriority, JobSpec, JobStatus};
pub use machine::{CostModel, MachineProfile, Placement};
pub use partition::Decomposition;
pub use report::{ReportBuilder, RunReport, StepTrace};
pub use scenario::{Scenario, ScenarioError};
pub use state::{CoupledState, StepRecord};
pub use threadrun::{
    run_serial, run_threaded, run_threaded_result, EngineSession, RunError, ThreadedBackend,
    ThreadedRunResult,
};
pub use timers::{Breakdown, BreakdownExt, Phase};
pub use tune::{
    tune_balancer, tune_strategy, StrategyPoint, StrategyTuneReport, TunePoint, TuneReport,
};
