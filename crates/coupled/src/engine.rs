//! The unified per-rank step pipeline.
//!
//! Every driver in this crate executes the same coupled DSMC/PIC
//! timestep (paper Fig. 1): Inject → DSMC_Move → Exchange →
//! Colli_React → R × (PIC_Move → Exchange → Poisson_Solve) → Reindex
//! → Rebalance. This module defines that sequence **exactly once**:
//!
//! * [`RankEngine`] owns all per-rank simulation state — particle
//!   buffer, RNG stream, (filtered) injector, field solver, exchange
//!   scratch, kernel pool — with one method per physics phase.
//! * [`StepPipeline::run_step`] is the phase sequence. Nothing else
//!   in the crate orders the phases.
//! * [`Backend`] supplies the execution context between the physics
//!   phases: [`SerialBackend`] (single rank, no communication, real
//!   wall clock), the threaded backend in [`crate::threadrun`] (real
//!   `vmpi` messaging, measured timing) and the modelled backend in
//!   [`crate::cluster`] (cost-model attribution, no real
//!   communication).
//! * [`obs::Observer`] observes per-phase times, per-exchange
//!   traffic, rebalances and per-step traces; the default
//!   implementation is a no-op, and
//!   [`crate::report::ReportBuilder`] uses it to assemble the shared
//!   [`crate::report::RunReport`]. The engine-private [`Probe`] hook
//!   is superseded by that public API; [`ProbeAdapter`] keeps legacy
//!   probes working.

use crate::config::SimConfig;
use crate::report::StepTrace;
use crate::state::StepRecord;
use crate::timers::{Breakdown, Phase};
use dsmc::{
    move_particles_pooled, ChemistryModel, CollisionEvent, CollisionModel, CrossCollisionModel,
    Injector, Pump,
};
use kernels::Pool;
use mesh::NestedMesh;
use obs::{ExchangeEvent, Observer, RebalanceEvent, SpanTimer};
use particles::{ParticleBuffer, SortScratch, SpeciesTable};
use pic::{accelerate_charged_pooled, deposit_charge_pooled, ElectricField, PoissonSolver};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sparse::KrylovOptions;
use std::sync::Arc;

/// Per-rank scratch state for the exchange phases, reused across
/// steps so the steady state is allocation-free: the keep mask and
/// both buffer sets persist at capacity — emigrants are serialized
/// straight into `outgoing` and `vmpi::exchange_into` refills
/// `incoming` in place.
#[derive(Debug, Default)]
pub struct ExchangeScratch {
    pub(crate) keep: Vec<bool>,
    /// `outgoing[d]`: wire bytes headed to rank `d`, cleared and
    /// repacked each exchange (capacity retained).
    pub(crate) outgoing: Vec<Vec<u8>>,
    /// `incoming[s]`: wire bytes received from rank `s`.
    pub(crate) incoming: Vec<Vec<u8>>,
}

/// All per-rank state of one coupled simulation. A serial run is one
/// engine owning the whole domain; a threaded run is one engine per
/// rank-thread sharing the meshes behind [`Arc`]s; the modelled
/// cluster driver is one engine executing the global physics while
/// its backend attributes the work to virtual ranks.
pub struct RankEngine {
    pub config: SimConfig,
    pub nm: Arc<NestedMesh>,
    pub species: Arc<SpeciesTable>,
    pub h_id: u8,
    pub hp_id: u8,
    pub particles: ParticleBuffer,
    /// Inlet injector over the cells this engine owns (`None` when a
    /// decomposed rank owns no inlet cells).
    pub injector: Option<Injector>,
    pub collisions: CollisionModel,
    pub cross: CrossCollisionModel,
    pub chemistry: ChemistryModel,
    pub poisson: PoissonSolver,
    pub efield: ElectricField,
    pub rng: StdRng,
    /// Dedicated DSMC stream for subcycled runs: when
    /// `config.k_sub_dsmc > 1` the neutral move/collide/react phases
    /// draw from this stream instead of `rng`, so changing the
    /// subcycle count never perturbs the PIC draws on `rng`. At
    /// `k_sub_dsmc == 1` it is never consumed and the engine keeps
    /// the legacy single-stream behaviour bit for bit.
    pub rng_dsmc: StdRng,
    /// Dedicated stream for partial-pump wall absorption decisions
    /// (`config.pump_prob`); never consumed when pumping is off.
    pub rng_pump: StdRng,
    /// DSMC iterations completed.
    pub step_count: usize,
    /// Kernel worker pool for the pooled phase kernels (serial pools
    /// delegate to the scalar kernels bit-identically).
    pub pool: Pool,
    /// Exchange scratch (used by communicating backends).
    pub exch: ExchangeScratch,
    sort_scratch: SortScratch,
    events: Vec<CollisionEvent>,
}

/// Seed of the dedicated DSMC subcycle stream for a rank seeded with
/// `seed` (splitmix64 golden-ratio offset — decorrelated from both
/// the main stream and the pump stream). Shared with the checkpoint
/// module: pre-v4 snapshots re-derive the aux streams from this.
pub(crate) fn dsmc_stream_seed(seed: u64) -> u64 {
    seed.wrapping_add(0x9E37_79B9_7F4A_7C15)
}

/// Seed of the dedicated pump-decision stream (see
/// [`dsmc_stream_seed`]).
pub(crate) fn pump_stream_seed(seed: u64) -> u64 {
    seed.wrapping_add(0x3C6E_F372_FE94_F82A)
}

impl RankEngine {
    /// Build a whole-domain engine (the serial and modelled drivers):
    /// full injector, serial kernel pool, RNG seeded from
    /// `config.seed`.
    pub fn new(config: SimConfig) -> Self {
        let spec = config.nozzle;
        let coarse = spec.generate();
        let nm = Arc::new(NestedMesh::from_coarse(coarse, move |c, n| {
            spec.classify(c, n)
        }));
        let (species, h_id, hp_id) =
            SpeciesTable::hydrogen_plasma(config.weight_h, config.weight_hplus);
        let injector = Some(Injector::new(&nm.coarse));
        let seed = config.seed;
        Self::assemble(
            config,
            nm,
            Arc::new(species),
            h_id,
            hp_id,
            injector,
            seed,
            Pool::serial(),
        )
    }

    /// Build the per-rank engine of a decomposed run: shared meshes
    /// and species table, injector filtered to the inlet cells rank
    /// `me` owns, and an independent RNG stream (`seed + 1 + me`, the
    /// paper's per-rank seeding).
    #[allow(clippy::too_many_arguments)]
    pub fn for_rank(
        config: SimConfig,
        nm: Arc<NestedMesh>,
        species: Arc<SpeciesTable>,
        h_id: u8,
        hp_id: u8,
        owner: &[u32],
        me: usize,
        threads: usize,
    ) -> Self {
        let injector = Injector::with_filter(&nm.coarse, |t| owner[t as usize] == me as u32);
        let seed = config.seed.wrapping_add(1 + me as u64);
        Self::assemble(
            config,
            nm,
            species,
            h_id,
            hp_id,
            injector,
            seed,
            Pool::new(threads),
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        config: SimConfig,
        nm: Arc<NestedMesh>,
        species: Arc<SpeciesTable>,
        h_id: u8,
        hp_id: u8,
        injector: Option<Injector>,
        seed: u64,
        pool: Pool,
    ) -> Self {
        let collisions = CollisionModel::new(nm.num_coarse(), &species, config.t_inject);
        let poisson = PoissonSolver::new(
            &nm.fine,
            KrylovOptions {
                rtol: 1e-6,
                max_iters: 1000,
            },
        );
        let efield = ElectricField::zeros(&nm.fine);
        RankEngine {
            config,
            nm,
            species,
            h_id,
            hp_id,
            particles: ParticleBuffer::new(),
            injector,
            collisions,
            cross: CrossCollisionModel::default(),
            chemistry: ChemistryModel::default(),
            poisson,
            efield,
            rng: StdRng::seed_from_u64(seed),
            rng_dsmc: StdRng::seed_from_u64(dsmc_stream_seed(seed)),
            rng_pump: StdRng::seed_from_u64(pump_stream_seed(seed)),
            step_count: 0,
            pool,
            exch: ExchangeScratch::default(),
            sort_scratch: SortScratch::default(),
            events: Vec::new(),
        }
    }

    /// Per-step injection rate (simulation particles) for H over this
    /// engine's inlet share.
    pub fn h_rate(&self) -> f64 {
        self.injector.as_ref().map_or(0.0, |inj| {
            inj.particles_per_step(
                self.config.density_h,
                self.config.v_drift,
                self.config.dt_dsmc,
                self.config.weight_h,
            )
        })
    }

    /// Per-step injection rate (simulation particles) for H⁺.
    pub fn ion_rate(&self) -> f64 {
        self.injector.as_ref().map_or(0.0, |inj| {
            inj.particles_per_step(
                self.config.density_hplus,
                self.config.v_drift,
                self.config.dt_dsmc,
                self.config.weight_hplus,
            )
        })
    }

    /// Neutral / charged particle counts per coarse cell.
    pub fn counts_per_cell(&self) -> (Vec<u64>, Vec<u64>) {
        let nc = self.nm.num_coarse();
        let mut neutral = vec![0u64; nc];
        let mut charged = vec![0u64; nc];
        for i in 0..self.particles.len() {
            let c = self.particles.cell[i] as usize;
            if self.particles.species[i] == self.h_id {
                neutral[c] += 1;
            } else {
                charged[c] += 1;
            }
        }
        (neutral, charged)
    }

    /// Execute one full DSMC iteration through the unified pipeline
    /// with the serial backend (no communication, full record).
    pub fn dsmc_step(&mut self) -> StepRecord {
        let step = self.step_count;
        let (rec, _, _) = StepPipeline::default().run_step(
            self,
            &mut SerialBackend::new(),
            &mut obs::NullObserver,
            step,
        );
        rec
    }

    // --- phase methods, called only by `StepPipeline::run_step` -----

    /// Periodic cell-order sort: restores memory locality for the
    /// per-cell collide/deposit loops. Off by default (reordering
    /// shifts RNG consumption order and thus default outputs).
    fn sort_by_cell(&mut self) {
        let nc = self.nm.num_coarse();
        self.particles.sort_by_cell(nc, &mut self.sort_scratch);
    }

    /// Inject (only effective on engines owning inlet cells).
    fn inject(&mut self, rec: &mut StepRecord, track: bool) {
        let before = self.particles.len();
        if let Some(inj) = self.injector.as_mut() {
            let cfg = &self.config;
            let h_rate =
                inj.particles_per_step(cfg.density_h, cfg.v_drift, cfg.dt_dsmc, cfg.weight_h);
            let ion_rate = inj.particles_per_step(
                cfg.density_hplus,
                cfg.v_drift,
                cfg.dt_dsmc,
                cfg.weight_hplus,
            );
            let h_sp = self.species.get(self.h_id).clone();
            let ion_sp = self.species.get(self.hp_id).clone();
            inj.inject(
                &self.nm.coarse,
                &mut self.particles,
                self.h_id,
                &h_sp,
                h_rate,
                cfg.v_drift,
                cfg.t_inject,
                &mut self.rng,
            );
            inj.inject(
                &self.nm.coarse,
                &mut self.particles,
                self.hp_id,
                &ion_sp,
                ion_rate,
                cfg.v_drift,
                cfg.t_inject,
                &mut self.rng,
            );
        }
        if track {
            rec.injected_cells
                .extend_from_slice(&self.particles.cell[before..]);
        }
    }

    /// DSMC_Move: advect the neutrals for one subcycle of `dt`
    /// (`dt_dsmc / k_sub_dsmc`; the full `dt_dsmc` when not
    /// subcycling). Subcycled runs draw from the dedicated
    /// [`RankEngine::rng_dsmc`] stream; the optional partial pump
    /// always decides on [`RankEngine::rng_pump`].
    fn dsmc_move(&mut self, rec: &mut StepRecord, track: bool, dt: f64) {
        let h_id = self.h_id;
        let pump = self.config.pump_prob.map(|prob| Pump {
            prob,
            rng: &mut self.rng_pump,
        });
        let rng = if self.config.k_sub_dsmc > 1 {
            &mut self.rng_dsmc
        } else {
            &mut self.rng
        };
        let stats = move_particles_pooled(
            &self.nm.coarse,
            &mut self.particles,
            &self.species,
            dt,
            self.config.t_wall,
            rng,
            &self.pool,
            |s| s == h_id,
            track.then_some(&mut rec.neutral_transitions),
            pump,
        );
        rec.exited += stats.exited;
        rec.pumped += stats.pumped;
    }

    /// Colli_React: NTC collisions, optional cross-species pass,
    /// chemistry — over one subcycle of `dt`. Record fields
    /// accumulate so subcycles sum (a single subcycle writes the
    /// identical totals the pre-subcycling assignment did).
    fn colli_react(&mut self, rec: &mut StepRecord, dt: f64) {
        self.events.clear();
        let rng = if self.config.k_sub_dsmc > 1 {
            &mut self.rng_dsmc
        } else {
            &mut self.rng
        };
        let cstats = self.collisions.collide_pooled(
            &self.nm.coarse,
            &mut self.particles,
            &self.species,
            self.h_id,
            dt,
            rng,
            &mut self.events,
            &self.pool,
        );
        rec.collision_candidates += cstats.candidates;
        rec.collisions += cstats.collisions;
        if self.config.cross_collisions {
            let xstats = self.cross.collide(
                &self.nm.coarse,
                &mut self.particles,
                &self.species,
                self.h_id,
                self.hp_id,
                dt,
                rng,
                &mut self.events,
            );
            rec.collision_candidates += xstats.candidates;
            rec.collisions += xstats.mex + xstats.cex;
        }
        let r1 = self.chemistry.react_collisions(
            &mut self.particles,
            &self.species,
            self.h_id,
            self.hp_id,
            &self.events,
            rng,
        );
        let r2 = self.chemistry.recombine(
            &self.nm.coarse,
            &mut self.particles,
            &self.species,
            self.h_id,
            self.hp_id,
            dt,
            rng,
        );
        rec.reactions.dissociations += r1.dissociations + r2.dissociations;
        rec.reactions.recombinations += r1.recombinations + r2.recombinations;
    }

    /// PIC_Move: kick with the *previous* substep's field, then
    /// advect the charged species (paper §III-B: "driven by the
    /// electric field of the previous timestep").
    fn pic_move(&mut self, rec: &mut StepRecord, track: bool) {
        let dt_pic = self.config.dt_pic();
        accelerate_charged_pooled(
            &self.nm,
            &mut self.particles,
            &self.species,
            &self.efield,
            self.config.b_field,
            dt_pic,
            &self.pool,
        );
        let hp_id = self.hp_id;
        let mut tr = Vec::new();
        let stats = move_particles_pooled(
            &self.nm.coarse,
            &mut self.particles,
            &self.species,
            dt_pic,
            self.config.t_wall,
            &mut self.rng,
            &self.pool,
            |s| s == hp_id,
            track.then_some(&mut tr),
            None,
        );
        rec.exited += stats.exited;
        if track {
            rec.charged_transitions.push(tr);
        }
    }

    /// Deposit the local charge onto the fine-grid nodes.
    fn deposit(&mut self) -> Vec<f64> {
        let mut node_charge = vec![0.0f64; self.nm.fine.num_nodes()];
        deposit_charge_pooled(
            &self.nm,
            &self.particles,
            &self.species,
            &mut node_charge,
            &self.pool,
        );
        node_charge
    }

    /// Poisson_Solve on the (globally reduced) node charge, then
    /// refresh E.
    fn field_solve(&mut self, node_charge: &[f64], rec: &mut StepRecord) {
        let (phi, stats) = self.poisson.solve_with(node_charge, &self.pool, None);
        self.efield = ElectricField::from_potential(&self.nm.fine, phi);
        rec.poisson_iters.push(stats.iterations);
    }

    /// Reindex: renumber owned particles from this rank's global
    /// offset.
    fn reindex(&mut self, start: u64) {
        self.particles.renumber(start);
    }
}

/// What a rebalance hook decided this step.
#[derive(Debug, Clone, Copy, Default)]
pub struct StepOutcome {
    /// Load-imbalance indicator (paper eq. 6) measured this step.
    pub lii: f64,
    /// Whether the decomposition changed.
    pub rebalanced: bool,
    /// Particles migrated by the re-decomposition.
    pub migrated: u64,
    /// Seconds spent re-decomposing (WLM + partition + KM remap +
    /// migration) — measured for real backends, modelled for the
    /// cluster; 0 when no rebalance happened.
    pub remap_seconds: f64,
    /// Stable name of the cost source that produced the partition
    /// weights (`""` when balancing is off).
    pub cost_source: &'static str,
    /// Stable name of the active decomposition mode.
    pub decomposition: &'static str,
    /// Smoothed per-unit cost rates of the active cost source
    /// (seconds per neutral move / collision pair / charged move);
    /// zeros for analytic sources.
    pub cost_rates: [f64; 3],
}

/// Traffic attribution of one particle exchange, reported by a
/// backend for the exchange it just carried (see
/// [`Backend::take_exchange_info`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExchangeInfo {
    /// Concrete strategy index ([`vmpi::Strategy::CONCRETE`] order).
    pub strategy: usize,
    /// Messages attributed to the exchange (exact protocol prediction
    /// for the modelled backend; a world-counter delta, best-effort,
    /// for the threaded one).
    pub transactions: u64,
    /// Bytes attributed to the exchange (same provenance).
    pub bytes: u64,
    /// Worst per-rank message count (0 when unknown).
    pub max_rank_msgs: u64,
    /// Ordered node pairs carrying an aggregated trunk frame (Hier
    /// only; 0 for the flat strategies).
    pub node_pairs: u64,
    /// Bytes of the aggregated leader-to-leader frames (Hier only).
    pub aggregated_bytes: u64,
}

/// Communication carried during one step, as attributed by the
/// backend (see [`Backend::step_comm`]). Per-step values telescope:
/// summed over a run they equal the backend's cumulative totals
/// exactly.
#[derive(Debug, Clone, Copy, Default)]
pub struct StepComm {
    /// Messages sent in the world this step.
    pub transactions: u64,
    /// Bytes sent in the world this step.
    pub bytes: u64,
    /// Exchanges carried this step per concrete strategy
    /// ([`vmpi::Strategy::CONCRETE`] order).
    pub strategy_uses: [u64; 4],
}

/// Cumulative backend-side counters a driver folds into its report.
#[derive(Debug, Clone, Copy, Default)]
pub struct BackendStats {
    /// Exchanges carried per concrete strategy
    /// ([`vmpi::Strategy::CONCRETE`] order: CC, DC, Sparse, Hier).
    pub strategy_uses: [u64; 4],
    /// Re-decompositions performed.
    pub rebalances: usize,
    /// Total particles migrated by rebalancing.
    pub rebalance_migrated: u64,
    /// Total messages over all steps (sum of the per-step
    /// [`StepComm::transactions`], so trace sums match exactly).
    pub transactions: u64,
    /// Total bytes over all steps (sum of the per-step
    /// [`StepComm::bytes`]).
    pub bytes: u64,
}

/// Execution context of the pipeline: where time is accounted, how
/// particles and charge move between ranks, and what the Rebalance
/// phase does. The physics phases themselves live on [`RankEngine`]
/// and are identical under every backend.
pub trait Backend {
    /// Whether the engine should record per-particle work quantities
    /// (injection cells, cell transitions) into the [`StepRecord`].
    /// Attribution backends need them; real-time backends skip the
    /// overhead.
    fn track(&self) -> bool {
        false
    }

    /// A new step begins (reset the stopwatch / attribution scratch).
    fn begin_step(&mut self, eng: &RankEngine);

    /// Close `phase` (`sub` = PIC substep index, 0 otherwise):
    /// measure the elapsed wall time or attribute the modelled cost
    /// into `bd`.
    fn lap(
        &mut self,
        phase: Phase,
        sub: usize,
        eng: &RankEngine,
        rec: &StepRecord,
        bd: &mut Breakdown,
    );

    /// Migrate emigrant particles to their owning ranks (no-op
    /// without real decomposition).
    fn exchange(&mut self, eng: &mut RankEngine, phase: Phase, sub: usize);

    /// Traffic attribution of the most recent exchange, if the
    /// backend measured or modelled one. Called by the pipeline right
    /// after each exchange's `lap` (the modelled backend only knows
    /// the traffic once the lap has attributed it); the returned
    /// record is consumed.
    fn take_exchange_info(&mut self) -> Option<ExchangeInfo> {
        None
    }

    /// Communication attributed to the step that just ended; resets
    /// the per-step accumulation. Backends without communication
    /// return zeros.
    fn step_comm(&mut self) -> StepComm {
        StepComm::default()
    }

    /// Sum the node charge across ranks (paper §IV-C reduction);
    /// identity without real decomposition.
    fn reduce_charge(&mut self, eng: &RankEngine, node_charge: Vec<f64>) -> Vec<f64>;

    /// Global base index for Reindex (exclusive scan of per-rank
    /// populations).
    fn reindex_base(&mut self, eng: &RankEngine) -> u64;

    /// The Rebalance phase: measure the load-imbalance indicator and,
    /// when a rebalancer is armed, possibly re-decompose.
    fn rebalance(&mut self, eng: &mut RankEngine, bd: &Breakdown, rec: &StepRecord) -> StepOutcome;

    /// The step is complete; attribution backends collapse their
    /// per-rank costs into `bd` here.
    fn end_step(&mut self, eng: &RankEngine, bd: &mut Breakdown);

    /// Fraction of the particle population owned by each rank.
    fn share(&self, eng: &RankEngine) -> Vec<f64>;

    /// Cumulative counters for the run report.
    fn stats(&self) -> BackendStats {
        BackendStats::default()
    }
}

/// Legacy observer hook of the pipeline, superseded by the public
/// [`obs::Observer`] API (which adds per-exchange and per-rebalance
/// signals). Existing implementations keep working through
/// [`ProbeAdapter`]; new code should implement [`obs::Observer`]
/// directly.
pub trait Probe {
    /// `phase` took `seconds` this step (called once per phase per
    /// step, after the step completes).
    fn phase(&mut self, phase: Phase, seconds: f64) {
        let _ = (phase, seconds);
    }

    /// Step `index` finished with this trace.
    fn step(&mut self, index: usize, trace: &StepTrace) {
        let _ = (index, trace);
    }
}

/// Adapts a legacy [`Probe`] to the [`obs::Observer`] API the
/// pipeline drives (exchange/rebalance signals are dropped — the
/// `Probe` trait never had them).
#[derive(Debug, Default)]
pub struct ProbeAdapter<P: Probe>(pub P);

impl<P: Probe> Observer for ProbeAdapter<P> {
    fn phase(&mut self, phase: Phase, seconds: f64) {
        self.0.phase(phase, seconds);
    }

    fn step(&mut self, index: usize, trace: &StepTrace) {
        self.0.step(index, trace);
    }
}

/// The do-nothing observer (historical name; now an alias of
/// [`obs::NullObserver`], which the pipeline accepts directly).
pub use obs::NullObserver as NoProbe;

/// The coupled timestep's phase sequence (paper Fig. 1), defined
/// exactly once. Every driver — `run_serial`, `run_threaded`,
/// `ClusterSim` — iterates this.
#[derive(Debug, Clone, Copy, Default)]
pub struct StepPipeline {
    /// Sort particles into cell order every this many steps (0 = off;
    /// see [`crate::config::RunConfig::sort_every`]).
    pub sort_every: usize,
}

impl StepPipeline {
    /// Emit the exchange the backend just attributed (if any) to the
    /// observer.
    fn emit_exchange<B: Backend, O: Observer>(
        be: &mut B,
        observer: &mut O,
        step: usize,
        phase: Phase,
        sub: usize,
    ) {
        if let Some(info) = be.take_exchange_info() {
            observer.exchange(&ExchangeEvent {
                step,
                phase,
                sub,
                strategy: info.strategy,
                transactions: info.transactions,
                bytes: info.bytes,
                max_rank_msgs: info.max_rank_msgs,
                node_pairs: info.node_pairs,
                aggregated_bytes: info.aggregated_bytes,
            });
        }
    }

    /// Execute one coupled DSMC/PIC timestep of `eng` under `be`,
    /// reporting to `observer`. Returns the work record, the step
    /// trace and the per-phase time breakdown.
    pub fn run_step<B: Backend, O: Observer>(
        &self,
        eng: &mut RankEngine,
        be: &mut B,
        observer: &mut O,
        step_index: usize,
    ) -> (StepRecord, StepTrace, Breakdown) {
        let mut rec = StepRecord::default();
        let mut bd = Breakdown::new();
        let track = be.track();
        be.begin_step(eng);

        if self.sort_every > 0 && step_index > 0 && step_index.is_multiple_of(self.sort_every) {
            eng.sort_by_cell();
        }

        // --- Inject --------------------------------------------------
        eng.inject(&mut rec, track);
        be.lap(Phase::Inject, 0, eng, &rec, &mut bd);

        // --- k_sub × (DSMC_Move + DSMC_Exchange + Colli_React) --------
        // One DSMC subcycle at k_sub == 1 reproduces the original
        // unrolled sequence exactly: `dt_dsmc / 1` is bitwise `dt_dsmc`
        // and the subcycle index passed as `sub` is 0, so every
        // existing guard hash is preserved.
        let k_sub = eng.config.k_sub_dsmc;
        let dt_sub = eng.config.dt_dsmc / k_sub as f64;
        for sc in 0..k_sub {
            eng.dsmc_move(&mut rec, track, dt_sub);
            be.lap(Phase::DsmcMove, sc, eng, &rec, &mut bd);
            be.exchange(eng, Phase::DsmcExchange, sc);
            be.lap(Phase::DsmcExchange, sc, eng, &rec, &mut bd);
            Self::emit_exchange(be, observer, step_index, Phase::DsmcExchange, sc);

            eng.colli_react(&mut rec, dt_sub);
            be.lap(Phase::ColliReact, sc, eng, &rec, &mut bd);
        }

        // --- R × (PIC_Move + PIC_Exchange + Poisson_Solve) ------------
        for sub in 0..eng.config.pic_per_dsmc {
            eng.pic_move(&mut rec, track);
            be.lap(Phase::PicMove, sub, eng, &rec, &mut bd);
            be.exchange(eng, Phase::PicExchange, sub);
            be.lap(Phase::PicExchange, sub, eng, &rec, &mut bd);
            Self::emit_exchange(be, observer, step_index, Phase::PicExchange, sub);
            let local = eng.deposit();
            let node_charge = be.reduce_charge(eng, local);
            eng.field_solve(&node_charge, &mut rec);
            be.lap(Phase::PoissonSolve, sub, eng, &rec, &mut bd);
        }

        // --- Reindex --------------------------------------------------
        let base = be.reindex_base(eng);
        eng.reindex(base);
        be.lap(Phase::Reindex, 0, eng, &rec, &mut bd);

        // --- Rebalance (Algorithm 1) ----------------------------------
        let outcome = be.rebalance(eng, &bd, &rec);
        be.lap(Phase::Rebalance, 0, eng, &rec, &mut bd);
        // rebalance migration is also an exchange
        Self::emit_exchange(be, observer, step_index, Phase::Rebalance, 0);
        if outcome.rebalanced {
            observer.rebalance(&RebalanceEvent {
                step: step_index,
                lii: outcome.lii,
                migrated: outcome.migrated,
                remap_seconds: outcome.remap_seconds,
                cost_source: outcome.cost_source,
                decomposition: outcome.decomposition,
                cost_rates: outcome.cost_rates,
            });
        }

        be.end_step(eng, &mut bd);
        eng.step_count += 1;
        rec.population = eng.particles.len();

        let comm = be.step_comm();
        let trace = StepTrace {
            step_time: bd.total(),
            lii: outcome.lii,
            share: be.share(eng),
            rebalanced: outcome.rebalanced,
            transactions: comm.transactions,
            bytes: comm.bytes,
            strategy_uses: comm.strategy_uses,
        };
        for p in Phase::ALL {
            observer.phase(p, bd[p]);
        }
        observer.step(step_index, &trace);
        (rec, trace, bd)
    }
}

/// The one wall-clock phase-attribution path shared by the serial and
/// threaded backends: a flat [`SpanTimer`] whose gap-free laps are
/// charged to the closing phase, so every lap-filled breakdown sums
/// to exactly the origin-to-last-lap wall time.
#[derive(Debug)]
pub struct WallClock {
    timer: SpanTimer,
}

impl WallClock {
    pub fn start() -> Self {
        WallClock {
            timer: SpanTimer::start(),
        }
    }

    /// Begin a step: discard time since the last lap (inter-step gaps
    /// belong to no phase).
    pub fn begin_step(&mut self) {
        self.timer.lap();
    }

    /// Charge the time since the previous lap to `bd[phase]`.
    pub fn lap(&mut self, bd: &mut Breakdown, phase: Phase) {
        bd[phase] += self.timer.lap();
    }

    /// Seconds since the previous lap, without restarting it.
    pub fn elapsed(&self) -> f64 {
        self.timer.elapsed()
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::start()
    }
}

/// Single-rank backend: no communication, full work record, real
/// wall-clock timing through the shared [`WallClock`].
pub struct SerialBackend {
    clock: WallClock,
}

impl SerialBackend {
    pub fn new() -> Self {
        SerialBackend {
            clock: WallClock::start(),
        }
    }
}

impl Default for SerialBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl Backend for SerialBackend {
    fn track(&self) -> bool {
        true
    }

    fn begin_step(&mut self, _eng: &RankEngine) {
        self.clock.begin_step();
    }

    fn lap(
        &mut self,
        phase: Phase,
        _sub: usize,
        _eng: &RankEngine,
        _rec: &StepRecord,
        bd: &mut Breakdown,
    ) {
        self.clock.lap(bd, phase);
    }

    fn exchange(&mut self, _eng: &mut RankEngine, _phase: Phase, _sub: usize) {}

    fn reduce_charge(&mut self, _eng: &RankEngine, node_charge: Vec<f64>) -> Vec<f64> {
        node_charge
    }

    fn reindex_base(&mut self, _eng: &RankEngine) -> u64 {
        0
    }

    fn rebalance(
        &mut self,
        _eng: &mut RankEngine,
        _bd: &Breakdown,
        _rec: &StepRecord,
    ) -> StepOutcome {
        StepOutcome::default()
    }

    fn end_step(&mut self, _eng: &RankEngine, _bd: &mut Breakdown) {}

    fn share(&self, _eng: &RankEngine) -> Vec<f64> {
        vec![1.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Dataset;

    #[test]
    fn serial_pipeline_matches_monolithic_record() {
        // the pipeline-driven dsmc_step must fill the full record
        let mut cfg = Dataset::D1.config(0.02);
        cfg.seed = 7;
        let mut eng = RankEngine::new(cfg);
        let rec = eng.dsmc_step();
        assert!(!rec.injected_cells.is_empty());
        assert_eq!(rec.poisson_iters.len(), eng.config.pic_per_dsmc);
        assert_eq!(rec.charged_transitions.len(), eng.config.pic_per_dsmc);
        assert_eq!(rec.population, eng.particles.len());
        assert_eq!(eng.step_count, 1);
    }

    #[test]
    fn serial_backend_breakdown_tiles_the_step() {
        let mut cfg = Dataset::D1.config(0.02);
        cfg.seed = 7;
        let mut eng = RankEngine::new(cfg);
        let mut be = SerialBackend::new();
        let pipeline = StepPipeline::default();
        let (_, trace, bd) = pipeline.run_step(&mut eng, &mut be, &mut NoProbe, 0);
        assert!(bd.total() > 0.0, "laps must measure wall time");
        assert_eq!(trace.step_time, bd.total());
        assert_eq!(trace.share, vec![1.0]);
        assert!(!trace.rebalanced);
    }

    #[test]
    fn legacy_probe_sees_every_phase_and_step_through_adapter() {
        #[derive(Default)]
        struct Counting {
            phases: usize,
            steps: usize,
            time: f64,
        }
        impl Probe for Counting {
            fn phase(&mut self, _p: Phase, s: f64) {
                self.phases += 1;
                self.time += s;
            }
            fn step(&mut self, _i: usize, t: &StepTrace) {
                self.steps += 1;
                assert!((self.time - t.step_time).abs() < 1e-12);
                self.time = 0.0;
            }
        }
        let mut cfg = Dataset::D1.config(0.02);
        cfg.seed = 7;
        let mut eng = RankEngine::new(cfg);
        let mut be = SerialBackend::new();
        let mut probe = ProbeAdapter(Counting::default());
        let pipeline = StepPipeline::default();
        for step in 0..3 {
            pipeline.run_step(&mut eng, &mut be, &mut probe, step);
        }
        assert_eq!(probe.0.steps, 3);
        assert_eq!(probe.0.phases, 3 * Phase::ALL.len());
    }

    #[test]
    fn serial_step_comm_is_zero() {
        let mut cfg = Dataset::D1.config(0.02);
        cfg.seed = 7;
        let mut eng = RankEngine::new(cfg);
        let mut be = SerialBackend::new();
        let (_, trace, _) = StepPipeline::default().run_step(&mut eng, &mut be, &mut NoProbe, 0);
        assert_eq!(trace.transactions, 0);
        assert_eq!(trace.bytes, 0);
        assert_eq!(trace.strategy_uses, [0; 4]);
    }
}
