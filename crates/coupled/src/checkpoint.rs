//! Binary checkpoint / restart of a running simulation.
//!
//! Long plume runs (the paper's are 100+ DSMC steps at 10⁹ particles)
//! need restartability. A checkpoint captures the particle population
//! and the step counter; on restore, the caller rebuilds the
//! [`CoupledState`] from the *same* [`crate::config::SimConfig`]
//! (meshes and matrices are deterministic functions of it) and the
//! RNG is re-seeded deterministically from `(seed, step)`, so a
//! restored run is reproducible (though not bitwise-identical to the
//! uninterrupted one, exactly like an MPI restart with fresh RNG
//! streams).
//!
//! Format (little-endian): magic `DPIC`, version u32, step u64,
//! particle count u64, then the fixed 61-byte wire records of
//! `particles::pack`.

use crate::state::CoupledState;
use bytes::{Buf, BufMut, BytesMut};
use particles::{pack_particle, unpack_particle, ParticleBuffer, PACKED_SIZE};
use rand::rngs::StdRng;
use rand::SeedableRng;

const MAGIC: &[u8; 4] = b"DPIC";
const VERSION: u32 = 1;

/// Errors from [`restore`].
#[derive(Debug, PartialEq, Eq)]
pub enum CheckpointError {
    BadMagic,
    BadVersion(u32),
    Truncated,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a dsmc-pic checkpoint"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Serialize the restartable state of `sim`.
pub fn checkpoint(sim: &CoupledState) -> Vec<u8> {
    let n = sim.particles.len();
    let mut buf = BytesMut::with_capacity(4 + 4 + 8 + 8 + n * PACKED_SIZE);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(sim.step_count as u64);
    buf.put_u64_le(n as u64);
    let mut rec = Vec::with_capacity(n * PACKED_SIZE);
    for i in 0..n {
        pack_particle(&sim.particles.get(i), &mut rec);
    }
    buf.put_slice(&rec);
    buf.to_vec()
}

/// Restore a checkpoint into `sim` (which must have been built from
/// the same `SimConfig`). Replaces the particle population and step
/// counter and re-seeds the RNG deterministically.
pub fn restore(sim: &mut CoupledState, data: &[u8]) -> Result<(), CheckpointError> {
    let mut buf = data;
    if buf.remaining() < 24 {
        return Err(CheckpointError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(CheckpointError::BadVersion(version));
    }
    let step = buf.get_u64_le() as usize;
    let n = buf.get_u64_le() as usize;
    if buf.remaining() != n * PACKED_SIZE {
        return Err(CheckpointError::Truncated);
    }

    let mut particles = ParticleBuffer::with_capacity(n);
    for k in 0..n {
        particles.push(unpack_particle(buf, k * PACKED_SIZE));
    }
    sim.particles = particles;
    sim.step_count = step;
    sim.rng = StdRng::seed_from_u64(
        sim.config.seed.wrapping_mul(0x9E3779B97F4A7C15) ^ step as u64,
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Dataset;

    fn sim() -> CoupledState {
        let mut cfg = Dataset::D1.config(0.02);
        cfg.seed = 404;
        CoupledState::new(cfg)
    }

    #[test]
    fn roundtrip_preserves_particles_and_step() {
        let mut a = sim();
        for _ in 0..8 {
            a.dsmc_step();
        }
        let blob = checkpoint(&a);

        let mut b = sim();
        restore(&mut b, &blob).unwrap();
        assert_eq!(b.step_count, a.step_count);
        assert_eq!(b.particles.len(), a.particles.len());
        for i in 0..a.particles.len() {
            assert_eq!(a.particles.get(i), b.particles.get(i));
        }
    }

    #[test]
    fn restored_run_continues_stably() {
        let mut a = sim();
        for _ in 0..6 {
            a.dsmc_step();
        }
        let blob = checkpoint(&a);
        let mut b = sim();
        restore(&mut b, &blob).unwrap();
        // continue both; populations stay in the same ballpark
        for _ in 0..6 {
            a.dsmc_step();
            b.dsmc_step();
        }
        let rel = (a.particles.len() as f64 - b.particles.len() as f64).abs()
            / a.particles.len().max(1) as f64;
        assert!(rel < 0.1, "{} vs {}", a.particles.len(), b.particles.len());
    }

    #[test]
    fn rejects_garbage() {
        let mut s = sim();
        assert_eq!(restore(&mut s, b"nope"), Err(CheckpointError::Truncated));
        assert_eq!(
            restore(&mut s, &[0u8; 64]),
            Err(CheckpointError::BadMagic)
        );
        // corrupt the version field
        let mut blob = checkpoint(&s);
        blob[4] = 0xFF;
        assert!(matches!(
            restore(&mut s, &blob),
            Err(CheckpointError::BadVersion(_))
        ));
        // truncate the body
        let blob = checkpoint(&s);
        if blob.len() > 30 {
            assert_eq!(
                restore(&mut s, &blob[..blob.len() - 1]),
                Err(CheckpointError::Truncated)
            );
        }
    }

    #[test]
    fn empty_simulation_roundtrips() {
        let a = sim();
        let blob = checkpoint(&a);
        let mut b = sim();
        restore(&mut b, &blob).unwrap();
        assert_eq!(b.particles.len(), 0);
        assert_eq!(b.step_count, 0);
    }
}
