//! Binary checkpoint / restart of a running simulation.
//!
//! Long plume runs (the paper's are 100+ DSMC steps at 10⁹ particles)
//! need restartability. A checkpoint captures every piece of evolving
//! state the meshes and matrices (deterministic functions of the
//! [`crate::config::SimConfig`]) do not fix: the step counter, the
//! RNG stream, the injector's fractional-particle carry, the Poisson
//! solver's warm-start potential (which also reconstructs E), the
//! adaptively ratcheted NTC `sigma_g_max` table, and the particle
//! population. A run restored from a v2+ checkpoint therefore
//! finishes **bitwise identical** to the uninterrupted run.
//!
//! Format (little-endian): magic `DPIC`, version u32, step u64, then
//! - v4 (current): RNG state 4×u64, injector carry f64, potential
//!   count u64 + f64s, `sigma_g_max` count u64 + f64s, the two
//!   auxiliary RNG streams (`rng_dsmc` then `rng_pump`, 4×u64 each —
//!   in the prelude, before the particle count, because the particle
//!   section must fill the rest of the blob exactly), particle count
//!   u64, then the particle population **lane-wise** mirroring the
//!   SoA buffer: all `px` (f64 bits), `py`, `pz`, `vx`, `vy`, `vz`,
//!   all cells (u32), species (u8), ids (u64) — checkpointing is a
//!   straight sweep per lane instead of a per-particle gather;
//! - v3 (still readable): same, without the auxiliary RNG streams —
//!   they are re-seeded deterministically on restore, which is sound
//!   because no pre-v4 run ever consumed them;
//! - v2 (still readable): v3 prelude, but the particle population
//!   as consecutive fixed 61-byte wire records of `particles::pack`;
//! - v1 (still readable): particle count u64, particle records; the
//!   RNG is re-seeded deterministically from `(seed, step)`, so the
//!   continuation is reproducible but not bitwise-identical to the
//!   uninterrupted run.
//!
//! v2 and v3 carry identical information (both total
//! `61·n` particle-section bytes); v3 only changes the byte order to
//! match the buffer layout, and v4 adds the two aux streams.

use crate::state::CoupledState;
use bytes::{Buf, BufMut, BytesMut};
use dsmc::Injector;
use particles::{unpack_particle, ParticleBuffer, PACKED_SIZE};
use pic::ElectricField;
use rand::rngs::StdRng;
use rand::SeedableRng;

const MAGIC: &[u8; 4] = b"DPIC";
const VERSION: u32 = 4;

/// Errors from [`restore`].
#[derive(Debug, PartialEq, Eq)]
pub enum CheckpointError {
    BadMagic,
    BadVersion(u32),
    Truncated,
    /// A v2+ field does not match the simulation it is restored into
    /// (different mesh resolution or collision table size).
    Mismatch,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a dsmc-pic checkpoint"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::Mismatch => {
                write!(f, "checkpoint does not match this configuration")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Serialize the restartable state of `sim` (v4, lane-wise).
pub fn checkpoint(sim: &CoupledState) -> Vec<u8> {
    let n = sim.particles.len();
    let phi = sim.poisson.phi();
    let sigma = sim.collisions.sigma_g_max();
    let mut buf = BytesMut::with_capacity(
        4 + 4 + 8 + 32 + 8 + 8 + phi.len() * 8 + 8 + sigma.len() * 8 + 64 + 8 + n * PACKED_SIZE,
    );
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(sim.step_count as u64);
    for w in sim.rng.state() {
        buf.put_u64_le(w);
    }
    buf.put_u64_le(
        sim.injector
            .as_ref()
            .map_or(0.0, |inj| inj.carry())
            .to_bits(),
    );
    buf.put_u64_le(phi.len() as u64);
    for &v in phi {
        buf.put_u64_le(v.to_bits());
    }
    buf.put_u64_le(sigma.len() as u64);
    for &v in sigma {
        buf.put_u64_le(v.to_bits());
    }
    // v4: aux streams in the prelude — the particle section must fill
    // the remainder of the blob exactly
    for w in sim.rng_dsmc.state() {
        buf.put_u64_le(w);
    }
    for w in sim.rng_pump.state() {
        buf.put_u64_le(w);
    }
    buf.put_u64_le(n as u64);
    // lane-wise particle body: one contiguous sweep per SoA lane
    let p = &sim.particles;
    for lane in [&p.px, &p.py, &p.pz, &p.vx, &p.vy, &p.vz] {
        for &v in lane {
            buf.put_u64_le(v.to_bits());
        }
    }
    for &c in &p.cell {
        buf.put_u32_le(c);
    }
    buf.put_slice(&p.species);
    for &id in &p.id {
        buf.put_u64_le(id);
    }
    buf.to_vec()
}

/// Serialize one rank of a decomposed run: the coarse-cell ownership
/// map this rank was running under, followed by the rank engine's full
/// current-version state. The envelope is what the engine-level recovery loop
/// (`coupled::threadrun`) stores each cadence step and replays from
/// after a rank death — the owner map must travel with the state
/// because the restored engine's injector is a function of it.
///
/// Format: `[owner_len u64 LE][owner u32 LE…][v2 checkpoint blob]`.
pub fn checkpoint_rank(sim: &CoupledState, owner: &[u32]) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(8 + owner.len() * 4);
    buf.put_u64_le(owner.len() as u64);
    for &o in owner {
        buf.put_u32_le(o);
    }
    let mut out = buf.to_vec();
    out.extend_from_slice(&checkpoint(sim));
    out
}

/// Restore a [`checkpoint_rank`] envelope into rank `me`'s engine.
/// Rebuilds the injector from the stored ownership map *before*
/// restoring the state body, so the injector carry lands in the rebuilt
/// injector and the continuation stays bitwise identical. Returns the
/// ownership map for the caller to resume under.
pub fn restore_rank(
    sim: &mut CoupledState,
    me: usize,
    data: &[u8],
) -> Result<Vec<u32>, CheckpointError> {
    let mut buf = data;
    if buf.remaining() < 8 {
        return Err(CheckpointError::Truncated);
    }
    let n = buf.get_u64_le() as usize;
    if n != sim.nm.num_coarse() {
        return Err(CheckpointError::Mismatch);
    }
    if buf.remaining() < n * 4 {
        return Err(CheckpointError::Truncated);
    }
    let owner: Vec<u32> = (0..n).map(|_| buf.get_u32_le()).collect();
    sim.injector = Injector::with_filter(&sim.nm.coarse, |t| owner[t as usize] == me as u32);
    restore(sim, buf)?;
    Ok(owner)
}

fn read_f64s(buf: &mut &[u8], n: usize) -> Result<Vec<f64>, CheckpointError> {
    if buf.remaining() < n * 8 {
        return Err(CheckpointError::Truncated);
    }
    Ok((0..n).map(|_| f64::from_bits(buf.get_u64_le())).collect())
}

/// Restore a checkpoint into `sim` (which must have been built from
/// the same `SimConfig`). Replaces the particle population, step
/// counter and — for v2+ checkpoints — the RNG stream, injector
/// carry, warm-start potential (reconstructing E) and NTC
/// `sigma_g_max` table, making the continuation bitwise identical to
/// the uninterrupted run. Reads all of v1 (record-wise, fresh RNG),
/// v2 (record-wise), v3 (lane-wise) and v4 (lane-wise plus the
/// subcycling/pump aux RNG streams; pre-v4 restores re-seed those
/// streams deterministically, which is exact because no pre-v4 run
/// ever consumed them).
pub fn restore(sim: &mut CoupledState, data: &[u8]) -> Result<(), CheckpointError> {
    let mut buf = data;
    if buf.remaining() < 24 {
        return Err(CheckpointError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = buf.get_u32_le();
    if !(1..=VERSION).contains(&version) {
        return Err(CheckpointError::BadVersion(version));
    }
    let step = buf.get_u64_le() as usize;

    let v2 = if version >= 2 {
        if buf.remaining() < 32 + 8 + 8 {
            return Err(CheckpointError::Truncated);
        }
        let rng_state = [
            buf.get_u64_le(),
            buf.get_u64_le(),
            buf.get_u64_le(),
            buf.get_u64_le(),
        ];
        let carry = f64::from_bits(buf.get_u64_le());
        let n_phi = buf.get_u64_le() as usize;
        if n_phi != sim.poisson.num_nodes() {
            return Err(CheckpointError::Mismatch);
        }
        let phi = read_f64s(&mut buf, n_phi)?;
        if buf.remaining() < 8 {
            return Err(CheckpointError::Truncated);
        }
        let n_sigma = buf.get_u64_le() as usize;
        if n_sigma != sim.collisions.sigma_g_max().len() {
            return Err(CheckpointError::Mismatch);
        }
        let sigma = read_f64s(&mut buf, n_sigma)?;
        Some((rng_state, carry, phi, sigma))
    } else {
        None
    };

    let aux = if version >= 4 {
        if buf.remaining() < 64 {
            return Err(CheckpointError::Truncated);
        }
        let read_state = |buf: &mut &[u8]| {
            [
                buf.get_u64_le(),
                buf.get_u64_le(),
                buf.get_u64_le(),
                buf.get_u64_le(),
            ]
        };
        Some((read_state(&mut buf), read_state(&mut buf)))
    } else {
        None
    };

    if buf.remaining() < 8 {
        return Err(CheckpointError::Truncated);
    }
    let n = buf.get_u64_le() as usize;
    if buf.remaining() != n * PACKED_SIZE {
        return Err(CheckpointError::Truncated);
    }
    let mut particles = ParticleBuffer::with_capacity(n);
    if version >= 3 {
        // lane-wise body: read each lane as one contiguous run
        for _ in 0..n {
            particles.px.push(f64::from_bits(buf.get_u64_le()));
        }
        for _ in 0..n {
            particles.py.push(f64::from_bits(buf.get_u64_le()));
        }
        for _ in 0..n {
            particles.pz.push(f64::from_bits(buf.get_u64_le()));
        }
        for _ in 0..n {
            particles.vx.push(f64::from_bits(buf.get_u64_le()));
        }
        for _ in 0..n {
            particles.vy.push(f64::from_bits(buf.get_u64_le()));
        }
        for _ in 0..n {
            particles.vz.push(f64::from_bits(buf.get_u64_le()));
        }
        for _ in 0..n {
            particles.cell.push(buf.get_u32_le());
        }
        for _ in 0..n {
            particles.species.push(buf.get_u8());
        }
        for _ in 0..n {
            particles.id.push(buf.get_u64_le());
        }
        debug_assert!(particles.lanes_consistent());
    } else {
        for k in 0..n {
            particles.push(unpack_particle(buf, k * PACKED_SIZE));
        }
    }
    sim.particles = particles;
    sim.step_count = step;
    match v2 {
        Some((rng_state, carry, phi, sigma)) => {
            sim.rng = StdRng::from_state(rng_state);
            if let Some(inj) = sim.injector.as_mut() {
                inj.set_carry(carry);
            }
            sim.poisson.set_phi(&phi);
            sim.efield = ElectricField::from_potential(&sim.nm.fine, &phi);
            sim.collisions.set_sigma_g_max(&sigma);
        }
        None => {
            // legacy v1: deterministic fresh stream, like an MPI
            // restart with new RNG seeds
            sim.rng = StdRng::seed_from_u64(
                sim.config.seed.wrapping_mul(0x9E3779B97F4A7C15) ^ step as u64,
            );
        }
    }
    match aux {
        Some((dsmc_state, pump_state)) => {
            sim.rng_dsmc = StdRng::from_state(dsmc_state);
            sim.rng_pump = StdRng::from_state(pump_state);
        }
        None => {
            // pre-v4 checkpoints never consumed the aux streams, so a
            // deterministic re-seed restores the exact stream state
            sim.rng_dsmc = StdRng::seed_from_u64(crate::engine::dsmc_stream_seed(sim.config.seed));
            sim.rng_pump = StdRng::seed_from_u64(crate::engine::pump_stream_seed(sim.config.seed));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Dataset;
    use particles::pack_particle;

    fn sim() -> CoupledState {
        let mut cfg = Dataset::D1.config(0.02);
        cfg.seed = 404;
        CoupledState::new(cfg)
    }

    #[test]
    fn roundtrip_preserves_particles_and_step() {
        let mut a = sim();
        for _ in 0..8 {
            a.dsmc_step();
        }
        let blob = checkpoint(&a);

        let mut b = sim();
        restore(&mut b, &blob).unwrap();
        assert_eq!(b.step_count, a.step_count);
        assert_eq!(b.particles.len(), a.particles.len());
        for i in 0..a.particles.len() {
            assert_eq!(a.particles.get(i), b.particles.get(i));
        }
    }

    #[test]
    fn restored_run_finishes_byte_identical() {
        // interrupt at step 6, restore into a fresh state, finish both
        // runs: the v2 checkpoint must make the continuation bitwise
        // identical through the unified engine — particles, RNG
        // stream, warm-start potential and all.
        let mut a = sim();
        for _ in 0..6 {
            a.dsmc_step();
        }
        let blob = checkpoint(&a);
        let mut b = sim();
        restore(&mut b, &blob).unwrap();
        for _ in 0..5 {
            a.dsmc_step();
            b.dsmc_step();
        }
        assert_eq!(a.particles.len(), b.particles.len());
        for i in 0..a.particles.len() {
            assert_eq!(
                a.particles.get(i),
                b.particles.get(i),
                "particle {i} diverged"
            );
        }
        assert_eq!(a.rng, b.rng, "RNG streams diverged");
        assert_eq!(a.poisson.phi(), b.poisson.phi(), "potentials diverged");
    }

    #[test]
    fn restored_run_continues_stably() {
        let mut a = sim();
        for _ in 0..6 {
            a.dsmc_step();
        }
        let blob = checkpoint(&a);
        let mut b = sim();
        restore(&mut b, &blob).unwrap();
        // continue both; populations stay in the same ballpark
        for _ in 0..6 {
            a.dsmc_step();
            b.dsmc_step();
        }
        let rel = (a.particles.len() as f64 - b.particles.len() as f64).abs()
            / a.particles.len().max(1) as f64;
        assert!(rel < 0.1, "{} vs {}", a.particles.len(), b.particles.len());
    }

    #[test]
    fn v1_checkpoints_still_restore() {
        let mut a = sim();
        for _ in 0..4 {
            a.dsmc_step();
        }
        // hand-build a v1 blob: magic, version 1, step, count, records
        let mut blob = BytesMut::new();
        blob.put_slice(MAGIC);
        blob.put_u32_le(1);
        blob.put_u64_le(a.step_count as u64);
        blob.put_u64_le(a.particles.len() as u64);
        for i in 0..a.particles.len() {
            let mut rec = Vec::new();
            pack_particle(&a.particles.get(i), &mut rec);
            blob.put_slice(&rec);
        }
        let blob = blob.to_vec();
        let mut b = sim();
        restore(&mut b, &blob).unwrap();
        assert_eq!(b.step_count, a.step_count);
        assert_eq!(b.particles.len(), a.particles.len());
        // legacy restores re-seed deterministically
        let mut c = sim();
        restore(&mut c, &blob).unwrap();
        assert_eq!(b.rng, c.rng);
    }

    #[test]
    fn v2_checkpoints_still_restore_bitwise() {
        let mut a = sim();
        for _ in 0..6 {
            a.dsmc_step();
        }
        // hand-build a v2 blob: same state prelude as v3, but the
        // particle population as consecutive 61-byte wire records
        let mut blob = BytesMut::new();
        blob.put_slice(MAGIC);
        blob.put_u32_le(2);
        blob.put_u64_le(a.step_count as u64);
        for w in a.rng.state() {
            blob.put_u64_le(w);
        }
        blob.put_u64_le(a.injector.as_ref().map_or(0.0, |inj| inj.carry()).to_bits());
        let phi = a.poisson.phi().to_vec();
        blob.put_u64_le(phi.len() as u64);
        for &v in &phi {
            blob.put_u64_le(v.to_bits());
        }
        let sigma = a.collisions.sigma_g_max().to_vec();
        blob.put_u64_le(sigma.len() as u64);
        for &v in &sigma {
            blob.put_u64_le(v.to_bits());
        }
        blob.put_u64_le(a.particles.len() as u64);
        for i in 0..a.particles.len() {
            let mut rec = Vec::new();
            pack_particle(&a.particles.get(i), &mut rec);
            blob.put_slice(&rec);
        }
        let blob = blob.to_vec();
        let mut b = sim();
        restore(&mut b, &blob).unwrap();
        // a v2 restore carries the full state: the continuation must
        // stay bitwise identical to the uninterrupted run
        for _ in 0..4 {
            a.dsmc_step();
            b.dsmc_step();
        }
        assert_eq!(a.particles.len(), b.particles.len());
        for i in 0..a.particles.len() {
            assert_eq!(a.particles.get(i), b.particles.get(i));
        }
        assert_eq!(a.rng, b.rng, "RNG streams diverged after v2 restore");
    }

    #[test]
    fn subcycled_pumped_restore_is_bitwise() {
        // with k_sub_dsmc > 1 and a partial pump both aux streams are
        // consumed every step: a v4 restore must carry them so the
        // continuation stays bitwise identical
        let mut cfg = Dataset::D1.config(0.02);
        cfg.seed = 404;
        cfg.k_sub_dsmc = 2;
        cfg.pump_prob = Some(0.6);
        let mut a = CoupledState::new(cfg.clone());
        for _ in 0..6 {
            a.dsmc_step();
        }
        let blob = checkpoint(&a);
        let mut b = CoupledState::new(cfg);
        restore(&mut b, &blob).unwrap();
        for _ in 0..5 {
            a.dsmc_step();
            b.dsmc_step();
        }
        assert_eq!(a.particles.len(), b.particles.len());
        for i in 0..a.particles.len() {
            assert_eq!(a.particles.get(i), b.particles.get(i));
        }
        assert_eq!(a.rng_dsmc, b.rng_dsmc, "dsmc aux stream diverged");
        assert_eq!(a.rng_pump, b.rng_pump, "pump aux stream diverged");
    }

    #[test]
    fn rejects_garbage() {
        let mut s = sim();
        assert_eq!(restore(&mut s, b"nope"), Err(CheckpointError::Truncated));
        assert_eq!(restore(&mut s, &[0u8; 64]), Err(CheckpointError::BadMagic));
        // corrupt the version field
        let mut blob = checkpoint(&s);
        blob[4] = 0xFF;
        assert!(matches!(
            restore(&mut s, &blob),
            Err(CheckpointError::BadVersion(_))
        ));
        // truncate the body
        let blob = checkpoint(&s);
        if blob.len() > 30 {
            assert_eq!(
                restore(&mut s, &blob[..blob.len() - 1]),
                Err(CheckpointError::Truncated)
            );
        }
    }

    #[test]
    fn rank_envelope_roundtrips_owner_and_state() {
        let mut a = sim();
        for _ in 0..5 {
            a.dsmc_step();
        }
        // an ownership map that gives rank 0 every coarse cell
        let owner = vec![0u32; a.nm.num_coarse()];
        let blob = checkpoint_rank(&a, &owner);

        let mut b = sim();
        let restored_owner = restore_rank(&mut b, 0, &blob).unwrap();
        assert_eq!(restored_owner, owner);
        assert_eq!(b.step_count, a.step_count);
        assert_eq!(b.particles.len(), a.particles.len());
        assert!(b.injector.is_some(), "owner map gives rank 0 the inlet");
        assert_eq!(
            b.injector.as_ref().unwrap().carry(),
            a.injector.as_ref().unwrap().carry(),
            "carry must land in the rebuilt injector"
        );
    }

    #[test]
    fn rank_envelope_rejects_bad_owner_maps() {
        let a = sim();
        let owner = vec![0u32; a.nm.num_coarse()];
        let blob = checkpoint_rank(&a, &owner);

        let mut b = sim();
        // short header
        assert_eq!(
            restore_rank(&mut b, 0, &blob[..4]),
            Err(CheckpointError::Truncated)
        );
        // owner map sized for a different mesh
        let wrong = checkpoint_rank(&a, &[0u32; 3]);
        assert_eq!(
            restore_rank(&mut b, 0, &wrong),
            Err(CheckpointError::Mismatch)
        );
        // owner list cut off mid-array
        assert_eq!(
            restore_rank(&mut b, 0, &blob[..8 + 2]),
            Err(CheckpointError::Truncated)
        );
    }

    #[test]
    fn empty_simulation_roundtrips() {
        let a = sim();
        let blob = checkpoint(&a);
        let mut b = sim();
        restore(&mut b, &blob).unwrap();
        assert_eq!(b.particles.len(), 0);
        assert_eq!(b.step_count, 0);
    }
}
