//! Functional parallel runner: every MPI rank is an OS thread.
//!
//! This is the *real* parallel implementation (paper §IV): ranks own
//! disjoint sets of coarse cells, keep only their own particles,
//! migrate particles with the configured exchange strategy after
//! every move phase, sum boundary charge with an all-reduce before
//! the Poisson solve, and re-decompose with the measured-lii dynamic
//! load balancer. Used for validation (serial vs parallel, paper
//! Fig. 8/9) and for the threaded benches.
//!
//! Determinism note: each rank owns an independent RNG stream, so a
//! k-rank run is statistically — not bitwise — equivalent to the
//! serial run, exactly like the paper's MPI solver ("minor
//! differences ... mainly due to random seeds").

use crate::config::RunConfig;
use crate::machine::{CostModel, MachineProfile};
use crate::timers::{Breakdown, Phase, Stopwatch};
use balance::{load_imbalance_indicator, RankTimes, RebalanceOutcome, Rebalancer};
use dsmc::{move_particles_pooled, ChemistryModel, CollisionModel, Injector};
use kernels::Pool;
use mesh::NestedMesh;
use particles::{pack_index, unpack_all, ParticleBuffer, SortScratch, SpeciesTable};
use pic::{accelerate_charged_pooled, deposit_charge_pooled, ElectricField, PoissonSolver};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sparse::KrylovOptions;
use std::sync::Arc;
use vmpi::collectives::{allgather_u64, allreduce_sum_f64, broadcast, gather};
use vmpi::{exchange_into, run_world, Comm, Strategy, ThreadComm};

/// Result of a threaded run (as returned by rank 0).
#[derive(Debug, Clone)]
pub struct ThreadedRunResult {
    /// Real H number density per coarse cell at the end of the run.
    pub density_h: Vec<f64>,
    /// Final global particle population.
    pub population: usize,
    /// Rank 0's measured wall-clock phase breakdown.
    pub breakdown: Breakdown,
    /// Total messages sent in the world.
    pub transactions: u64,
    /// Total bytes sent in the world.
    pub bytes: u64,
    /// Number of rebalances performed.
    pub rebalances: usize,
    /// Exchanges carried per concrete strategy, indexed by
    /// [`Strategy::CONCRETE`] order (CC, DC, Sparse). Under
    /// [`Strategy::Auto`] the per-exchange decision rule fills
    /// whichever buckets it picks; a fixed strategy fills one.
    pub strategy_uses: [u64; 3],
}

/// Run the coupled solver on `run.ranks` OS threads for `run.steps`
/// DSMC iterations.
pub fn run_threaded(run: &RunConfig) -> ThreadedRunResult {
    let spec = run.sim.nozzle;
    let coarse = spec.generate();
    let nm = Arc::new(NestedMesh::from_coarse(coarse, move |c, n| {
        spec.classify(c, n)
    }));
    let (species, h_id, hp_id) =
        SpeciesTable::hydrogen_plasma(run.sim.weight_h, run.sim.weight_hplus);
    let species = Arc::new(species);

    // initial unweighted decomposition, shared by all ranks
    let (xadj, adjncy) = nm.coarse.cell_graph();
    let g = partition::Graph::new(xadj.clone(), adjncy.clone(), vec![1; nm.num_coarse()]);
    let owner0 = Arc::new(partition::part_graph_kway(
        &g,
        run.ranks,
        partition::KwayOptions::default(),
    ));
    let xadj = Arc::new(xadj);
    let adjncy = Arc::new(adjncy);

    let results = run_world(run.ranks, |comm| {
        rank_main(
            comm,
            run,
            &nm,
            &species,
            h_id,
            hp_id,
            &owner0,
            &xadj,
            &adjncy,
        )
    });
    results.into_iter().next().expect("rank 0 result")
}

/// Per-rank scratch state for the exchange phases, reused across
/// steps so the steady state is allocation-free: the keep mask and
/// both buffer sets persist at capacity — emigrants are serialized
/// straight into `outgoing` and [`exchange_into`] refills `incoming`
/// in place.
#[derive(Debug, Default)]
pub struct ExchangeScratch {
    keep: Vec<bool>,
    /// `outgoing[d]`: wire bytes headed to rank `d`, cleared and
    /// repacked each exchange (capacity retained).
    outgoing: Vec<Vec<u8>>,
    /// `incoming[s]`: wire bytes received from rank `s`.
    incoming: Vec<Vec<u8>>,
}

/// Split off the particles of `buf` that no longer belong to `me`,
/// serialising each emigrant straight into its destination's wire
/// buffer in the same pass that builds the keep mask. (The seed
/// version staged per-destination index lists and re-walked them
/// through a second packing pass, allocating fresh wire buffers every
/// exchange.)
fn pack_emigrants(
    buf: &mut ParticleBuffer,
    owner: &[u32],
    me: usize,
    ranks: usize,
    scratch: &mut ExchangeScratch,
) {
    scratch.outgoing.resize_with(ranks, Vec::new);
    for b in scratch.outgoing.iter_mut() {
        b.clear();
    }
    scratch.keep.clear();
    scratch.keep.resize(buf.len(), true);
    let mut emigrants = 0usize;
    for i in 0..buf.len() {
        let dest = owner[buf.cell[i] as usize] as usize;
        if dest != me {
            pack_index(buf, i, &mut scratch.outgoing[dest]);
            scratch.keep[i] = false;
            emigrants += 1;
        }
    }
    if emigrants > 0 {
        buf.compact(&scratch.keep);
    }
}

/// Resolve [`Strategy::Auto`] for one exchange: every rank contributes
/// its per-destination byte counts (8·ranks bytes), rank 0 assembles
/// the migration byte matrix and scores the concrete strategies with
/// the cost model, and the 1-byte pick is broadcast. The pick only
/// changes the message schedule — every strategy delivers identical
/// buffers — so the machine profile behind `cost` can never affect
/// physics.
fn resolve_strategy<C: Comm>(
    comm: &C,
    configured: Strategy,
    outgoing: &[Vec<u8>],
    cost: &CostModel,
) -> Strategy {
    if configured != Strategy::Auto {
        return configured;
    }
    let mut row = Vec::with_capacity(outgoing.len() * 8);
    for b in outgoing {
        row.extend_from_slice(&(b.len() as u64).to_le_bytes());
    }
    let choice = gather(comm, 0, row).map(|rows| {
        let matrix: Vec<Vec<u64>> = rows
            .iter()
            .map(|r| {
                r.chunks_exact(8)
                    .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                    .collect()
            })
            .collect();
        let pick = cost.pick_strategy(&matrix);
        let idx = Strategy::CONCRETE
            .iter()
            .position(|&s| s == pick)
            .expect("pick is concrete");
        vec![idx as u8]
    });
    Strategy::CONCRETE[broadcast(comm, 0, choice)[0] as usize]
}

/// One full particle migration: pack emigrants, resolve the strategy,
/// run the wire exchange through the reused scratch buffers, unpack
/// immigrants. Returns the concrete strategy that carried it.
fn migrate<C: Comm>(
    comm: &C,
    configured: Strategy,
    cost: &CostModel,
    buf: &mut ParticleBuffer,
    owner: &[u32],
    scratch: &mut ExchangeScratch,
) -> Strategy {
    pack_emigrants(buf, owner, comm.rank(), comm.size(), scratch);
    let strategy = resolve_strategy(comm, configured, &scratch.outgoing, cost);
    exchange_into(comm, strategy, &mut scratch.outgoing, &mut scratch.incoming);
    for inc in &scratch.incoming {
        unpack_all(inc, buf);
    }
    strategy
}

/// Tally one resolved exchange into the CONCRETE-ordered counters.
fn tally(uses: &mut [u64; 3], s: Strategy) {
    let idx = Strategy::CONCRETE
        .iter()
        .position(|&c| c == s)
        .expect("resolved strategy is concrete");
    uses[idx] += 1;
}

#[allow(clippy::too_many_arguments)]
fn rank_main(
    comm: ThreadComm,
    run: &RunConfig,
    nm: &NestedMesh,
    species: &SpeciesTable,
    h_id: u8,
    hp_id: u8,
    owner0: &[u32],
    xadj: &[u32],
    adjncy: &[u32],
) -> ThreadedRunResult {
    let me = comm.rank();
    let ranks = comm.size();
    let cfg = &run.sim;
    let mut owner: Vec<u32> = owner0.to_vec();
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(1 + me as u64));
    let pool = Pool::new(run.threads_per_rank);
    let mut exch = ExchangeScratch::default();
    let mut sort_scratch = SortScratch::default();
    // Parameters for the Auto decision rule. The threaded backend has
    // no real α/β of its own, so the Tianhe-2 profile is the
    // documented default; see `resolve_strategy` for why this can
    // never change the physics.
    let cost = CostModel::new(MachineProfile::tianhe2(), ranks);
    let mut strategy_uses = [0u64; 3];

    let mut buf = ParticleBuffer::new();
    let mut injector = Injector::with_filter(&nm.coarse, |t| owner[t as usize] == me as u32);
    let mut collisions = CollisionModel::new(nm.num_coarse(), species, cfg.t_inject);
    let chemistry = ChemistryModel::default();
    let mut poisson = PoissonSolver::new(
        &nm.fine,
        KrylovOptions {
            rtol: 1e-6,
            max_iters: 1000,
        },
    );
    let mut efield = ElectricField::zeros(&nm.fine);
    let mut rebalancer = run.rebalance.map(Rebalancer::new);
    let mut breakdown = Breakdown::new();
    let mut events = Vec::new();
    let h_sp = species.get(h_id).clone();
    let ion_sp = species.get(hp_id).clone();

    for step in 0..run.steps {
        let mut sw = Stopwatch::start();
        let mut step_bd = Breakdown::new();

        // Periodic cell-order sort: restores memory locality for the
        // per-cell collide/deposit loops. Off by default (reordering
        // shifts RNG consumption order and thus default outputs).
        if run.sort_every > 0 && step > 0 && step % run.sort_every == 0 {
            buf.sort_by_cell(nm.num_coarse(), &mut sort_scratch);
        }

        // --- Inject (only on ranks owning inlet cells) --------------
        if let Some(inj) = injector.as_mut() {
            let h_rate = inj.particles_per_step(
                cfg.density_h,
                cfg.v_drift,
                cfg.dt_dsmc,
                cfg.weight_h,
            );
            let ion_rate = inj.particles_per_step(
                cfg.density_hplus,
                cfg.v_drift,
                cfg.dt_dsmc,
                cfg.weight_hplus,
            );
            inj.inject(
                &nm.coarse, &mut buf, h_id, &h_sp, h_rate, cfg.v_drift, cfg.t_inject,
                &mut rng,
            );
            inj.inject(
                &nm.coarse, &mut buf, hp_id, &ion_sp, ion_rate, cfg.v_drift, cfg.t_inject,
                &mut rng,
            );
        }
        sw.lap(&mut step_bd, Phase::Inject);

        // --- DSMC_Move + DSMC_Exchange -------------------------------
        move_particles_pooled(
            &nm.coarse,
            &mut buf,
            species,
            cfg.dt_dsmc,
            cfg.t_wall,
            &mut rng,
            &pool,
            |s| s == h_id,
            None,
        );
        sw.lap(&mut step_bd, Phase::DsmcMove);
        let s = migrate(&comm, run.strategy, &cost, &mut buf, &owner, &mut exch);
        tally(&mut strategy_uses, s);
        sw.lap(&mut step_bd, Phase::DsmcExchange);

        // --- Colli_React ----------------------------------------------
        events.clear();
        collisions.collide_pooled(
            &nm.coarse,
            &mut buf,
            species,
            h_id,
            cfg.dt_dsmc,
            &mut rng,
            &mut events,
            &pool,
        );
        if cfg.cross_collisions {
            dsmc::CrossCollisionModel::default().collide(
                &nm.coarse,
                &mut buf,
                species,
                h_id,
                hp_id,
                cfg.dt_dsmc,
                &mut rng,
                &mut events,
            );
        }
        chemistry.react_collisions(&mut buf, species, h_id, hp_id, &events, &mut rng);
        chemistry.recombine(
            &nm.coarse,
            &mut buf,
            species,
            h_id,
            hp_id,
            cfg.dt_dsmc,
            &mut rng,
        );
        sw.lap(&mut step_bd, Phase::ColliReact);

        // --- PIC substeps ----------------------------------------------
        for _ in 0..cfg.pic_per_dsmc {
            accelerate_charged_pooled(
                nm,
                &mut buf,
                species,
                &efield,
                cfg.b_field,
                cfg.dt_pic(),
                &pool,
            );
            move_particles_pooled(
                &nm.coarse,
                &mut buf,
                species,
                cfg.dt_pic(),
                cfg.t_wall,
                &mut rng,
                &pool,
                |s| s == hp_id,
                None,
            );
            sw.lap(&mut step_bd, Phase::PicMove);
            let s = migrate(&comm, run.strategy, &cost, &mut buf, &owner, &mut exch);
            tally(&mut strategy_uses, s);
            sw.lap(&mut step_bd, Phase::PicExchange);

            // deposit local charge, sum boundary/node charge across
            // ranks (paper §IV-C reduction), solve replicated
            let mut node_charge = vec![0.0f64; nm.fine.num_nodes()];
            deposit_charge_pooled(nm, &buf, species, &mut node_charge, &pool);
            let node_charge = allreduce_sum_f64(&comm, &node_charge);
            let (phi, _stats) = poisson.solve_with(&node_charge, &pool, None);
            efield = ElectricField::from_potential(&nm.fine, phi);
            sw.lap(&mut step_bd, Phase::PoissonSolve);
        }

        // --- Reindex: exclusive scan of per-rank counts ----------------
        let counts = allgather_u64(&comm, buf.len() as u64);
        let start: u64 = counts[..me].iter().sum();
        buf.renumber(start);
        sw.lap(&mut step_bd, Phase::Reindex);

        // --- Rebalance (measured lii, Algorithm 1) ---------------------
        if let Some(rb) = &mut rebalancer {
            // share measured times: (total, migration, poisson) triples
            let mine = [
                step_bd.total(),
                step_bd.migration(),
                step_bd.poisson(),
            ];
            let bytes: Vec<u8> = mine.iter().flat_map(|v| v.to_le_bytes()).collect();
            let gathered = gather(&comm, 0, bytes);
            let packed = if me == 0 {
                let mut out = Vec::new();
                for b in gathered.unwrap() {
                    out.extend_from_slice(&b);
                }
                Some(out)
            } else {
                None
            };
            let all = broadcast(&comm, 0, packed);
            let times: Vec<RankTimes> = all
                .chunks_exact(24)
                .map(|c| RankTimes {
                    total: f64::from_le_bytes(c[0..8].try_into().unwrap()),
                    migration: f64::from_le_bytes(c[8..16].try_into().unwrap()),
                    poisson: f64::from_le_bytes(c[16..24].try_into().unwrap()),
                })
                .collect();
            let lii = load_imbalance_indicator(&times);

            // global per-cell counts (needed by the load model)
            let nc = nm.num_coarse();
            let mut local = vec![0.0f64; 2 * nc];
            for i in 0..buf.len() {
                let c = buf.cell[i] as usize;
                if buf.species[i] == h_id {
                    local[c] += 1.0;
                } else {
                    local[nc + c] += 1.0;
                }
            }
            let global = allreduce_sum_f64(&comm, &local);
            let neutral: Vec<u64> = global[..nc].iter().map(|&v| v as u64).collect();
            let charged: Vec<u64> = global[nc..].iter().map(|&v| v as u64).collect();

            // every rank runs the (deterministic) algorithm on the
            // same inputs => identical new ownership everywhere
            if let RebalanceOutcome::Remapped { new_owner, .. } =
                rb.step(lii, xadj, adjncy, &neutral, &charged, &owner, ranks)
            {
                owner = new_owner;
                injector =
                    Injector::with_filter(&nm.coarse, |t| owner[t as usize] == me as u32);
                let s = migrate(&comm, run.strategy, &cost, &mut buf, &owner, &mut exch);
                tally(&mut strategy_uses, s);
            }
            sw.lap(&mut step_bd, Phase::Rebalance);
        }

        breakdown += step_bd;
    }

    // --- final diagnostics: global H density per coarse cell ---------
    let nc = nm.num_coarse();
    let mut counts = vec![0.0f64; nc];
    for i in 0..buf.len() {
        if buf.species[i] == h_id {
            counts[buf.cell[i] as usize] += 1.0;
        }
    }
    let counts = allreduce_sum_f64(&comm, &counts);
    let density_h: Vec<f64> = counts
        .iter()
        .zip(&nm.coarse.volumes)
        .map(|(&c, &v)| c * species.get(h_id).weight / v)
        .collect();
    let pops = allgather_u64(&comm, buf.len() as u64);

    ThreadedRunResult {
        density_h,
        population: pops.iter().sum::<u64>() as usize,
        breakdown,
        transactions: comm.stats().transactions(),
        bytes: comm.stats().bytes(),
        rebalances: rebalancer.map_or(0, |r| r.rebalance_count),
        strategy_uses,
    }
}

/// Reference serial run of the same configuration (the paper's
/// validated serial baseline), returning the same diagnostics.
pub fn run_serial(run: &RunConfig) -> ThreadedRunResult {
    let mut st = crate::state::CoupledState::new(run.sim.clone());
    for _ in 0..run.steps {
        st.dsmc_step();
    }
    let (neutral, _) = st.counts_per_cell();
    let w = st.species.get(st.h_id).weight;
    let density_h: Vec<f64> = neutral
        .iter()
        .zip(&st.nm.coarse.volumes)
        .map(|(&c, &v)| c as f64 * w / v)
        .collect();
    ThreadedRunResult {
        density_h,
        population: st.particles.len(),
        breakdown: Breakdown::new(),
        transactions: 0,
        bytes: 0,
        rebalances: 0,
        strategy_uses: [0; 3],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Dataset, RunConfig};
    use vmpi::Strategy;

    fn quick_run(ranks: usize, strategy: Strategy, lb: bool) -> ThreadedRunResult {
        let mut run = RunConfig::paper(Dataset::D1, 0.02, ranks);
        run.sim.seed = 5;
        run.steps = 12;
        run.strategy = strategy;
        if !lb {
            run.rebalance = None;
        } else {
            run.rebalance = Some(balance::RebalanceConfig {
                t_interval: 4,
                ..Default::default()
            });
        }
        run_threaded(&run)
    }

    #[test]
    fn threaded_run_produces_particles() {
        let r = quick_run(3, Strategy::Distributed, false);
        assert!(r.population > 0);
        assert!(r.transactions > 0, "ranks must communicate");
        assert!(r.density_h.iter().any(|&d| d > 0.0));
    }

    #[test]
    fn strategies_agree_statistically() {
        let dc = quick_run(3, Strategy::Distributed, false);
        let cc = quick_run(3, Strategy::Centralized, false);
        // same seeds, same physics: populations must be close
        let diff = (dc.population as f64 - cc.population as f64).abs()
            / dc.population.max(1) as f64;
        assert!(diff < 0.15, "dc {} vs cc {}", dc.population, cc.population);
    }

    #[test]
    fn parallel_matches_serial_density() {
        let mut run = RunConfig::paper(Dataset::D1, 0.02, 4);
        run.sim.seed = 5;
        run.steps = 16;
        run.rebalance = None;
        let par = run_threaded(&run);
        let ser = run_serial(&run);
        // total inventory within statistical scatter
        let tot_par: f64 = par.density_h.iter().sum();
        let tot_ser: f64 = ser.density_h.iter().sum();
        let rel = (tot_par - tot_ser).abs() / tot_ser.max(1e-300);
        assert!(rel < 0.2, "parallel {tot_par} vs serial {tot_ser}");
    }

    #[test]
    fn rebalancing_fires_in_threaded_mode() {
        let r = quick_run(4, Strategy::Distributed, true);
        assert!(r.rebalances >= 1, "threaded balancer never fired");
        assert!(r.population > 0);
    }

    #[test]
    fn sparse_matches_distributed_exactly() {
        // same seeds, and both strategies deliver identical buffers in
        // identical source order — the full pipeline must agree bit
        // for bit, not just statistically. (No load balancer here: its
        // trigger is *measured wall time*, which is nondeterministic
        // across runs regardless of strategy.)
        let dc = quick_run(3, Strategy::Distributed, false);
        let sp = quick_run(3, Strategy::Sparse, false);
        assert_eq!(sp.population, dc.population);
        assert_eq!(sp.density_h, dc.density_h);
        let [_, _, sparse_uses] = sp.strategy_uses;
        assert!(sparse_uses > 0, "sparse never carried an exchange");
    }

    #[test]
    fn auto_resolves_concrete_strategies() {
        let a = quick_run(3, Strategy::Auto, false);
        assert!(a.population > 0);
        let used: u64 = a.strategy_uses.iter().sum();
        // one DSMC exchange + one per PIC substep, every step
        assert!(used >= 12, "expected an exchange tally per step, got {used}");
        // same seeds → same physics as any fixed strategy
        let dc = quick_run(3, Strategy::Distributed, false);
        assert_eq!(a.population, dc.population);
        assert_eq!(a.density_h, dc.density_h);
    }
}
