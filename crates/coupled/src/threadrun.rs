//! Functional parallel runner: every MPI rank is an OS thread.
//!
//! This is the *real* parallel implementation (paper §IV): ranks own
//! disjoint sets of coarse cells, keep only their own particles,
//! migrate particles with the configured exchange strategy after
//! every move phase, sum boundary charge with an all-reduce before
//! the Poisson solve, and re-decompose with the measured-lii dynamic
//! load balancer. Used for validation (serial vs parallel, paper
//! Fig. 8/9) and for the threaded benches.
//!
//! The step itself is the one [`StepPipeline`]; this module only
//! supplies [`ThreadedBackend`] — real `vmpi` communication plus
//! measured [`crate::engine::WallClock`] timing — and the run
//! harness around it. Rank 0 additionally drives an [`obs::Recorder`]
//! (metrics registry + trace sink) when the run's
//! [`crate::config::ObsConfig`] asks for one.
//!
//! # Faults and recovery (DESIGN.md §12)
//!
//! Every communication call is fallible ([`vmpi::CommError`]); the
//! backend latches the first error it sees, aborts its rank so peers
//! collapse promptly instead of waiting out timeouts, and the rank
//! surfaces the failure. [`run_threaded_result`] is the recovering
//! entry point: with a [`vmpi::FaultPlan`] installed each
//! rank's transport is wrapped in [`vmpi::ChaosComm`] (deterministic
//! drop/duplicate/delay/stall/kill injection) under
//! [`vmpi::ReliableComm`] (sequence numbers, dedup and journal
//! retransmission), and under
//! [`FaultPolicy::RestartFromCheckpoint`] a detected rank death tears
//! the world down, restores every rank from the last consistent
//! in-memory checkpoint (taken every
//! [`RunConfig::checkpoint_every`] steps, only at fault-free
//! boundaries) and replays to completion. Because the reliability
//! sublayer delivers exactly the clean run's per-pair payloads in
//! order, and v2 checkpoints capture the whole evolving per-rank
//! state, the recovered run finishes **bitwise identical** to the
//! clean one; the trace of a recovered run contains only the replayed
//! steps.
//!
//! Determinism note: each rank owns an independent RNG stream, so a
//! k-rank run is statistically — not bitwise — equivalent to the
//! serial run, exactly like the paper's MPI solver ("minor
//! differences ... mainly due to random seeds").

use crate::checkpoint::{checkpoint_rank, restore_rank, CheckpointError};
use crate::config::{FaultPolicy, RunConfig};
use crate::engine::{
    Backend, BackendStats, ExchangeInfo, ExchangeScratch, RankEngine, SerialBackend, StepComm,
    StepOutcome, StepPipeline, WallClock,
};
use crate::machine::{CostModel, MachineProfile};
use crate::report::{ReportBuilder, RunReport};
use crate::state::StepRecord;
use crate::timers::{Breakdown, Phase};
use balance::{load_imbalance_indicator, CostSample, RankTimes, RebalanceOutcome, Rebalancer};
use dsmc::Injector;
use mesh::NestedMesh;
use obs::{Observer as _, Recorder, Tee};
use particles::{pack_index, unpack_all, ParticleBuffer, SpeciesTable};
use partition::{block_ranges, Decomposition};
use std::sync::{Arc, Mutex};
use vmpi::collectives::{
    allgather_f64, allgather_u64, allreduce_sum_f64, allreduce_sum_u64, broadcast, gather,
};
use vmpi::{
    exchange_hier_overlapped, exchange_into, run_world, ChaosComm, ChaosWorld, Comm, CommError,
    CommResult, NodeMap, ReliableComm, ReliableWorld, Strategy,
};

/// Result of a threaded run (as returned by rank 0) — the shared
/// [`RunReport`].
pub type ThreadedRunResult = RunReport;

/// Recovery replays attempted before a fault is surfaced to the
/// caller — a backstop against fault plans (or genuinely broken
/// transports) that keep killing the run faster than checkpoints can
/// advance it.
const MAX_RECOVERIES: usize = 8;

/// Why a threaded run failed (see [`run_threaded_result`]).
#[derive(Debug)]
pub enum RunError {
    /// A rank died — a fault-plan kill, an exhausted retry budget, or
    /// a wedged peer — and the policy was [`FaultPolicy::Abort`], or
    /// the bounded recovery budget was already spent.
    RankFailure {
        /// First failing rank (lowest rank id when several latch).
        rank: usize,
        /// DSMC step the failure surfaced at (`steps` = during the
        /// end-of-run diagnostics collectives).
        step: usize,
        error: CommError,
        /// Checkpoint restarts performed before giving up.
        recoveries: usize,
    },
    /// A recovery replay could not restore a stored checkpoint; never
    /// recoverable, surfaced under every policy.
    Checkpoint(CheckpointError),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::RankFailure {
                rank,
                step,
                error,
                recoveries,
            } => write!(
                f,
                "rank {rank} failed at step {step}: {error} (after {recoveries} recoveries)"
            ),
            RunError::Checkpoint(e) => write!(f, "recovery checkpoint unusable: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

/// One rank's failure, surfaced out of [`rank_main`].
enum RankError {
    Comm { step: usize, error: CommError },
    Checkpoint(CheckpointError),
}

/// Per-rank in-memory checkpoint slots shared across recovery
/// attempts: `(next step to run, checkpoint_rank envelope)`. Slots are
/// only written after a world-wide barrier at the boundary succeeds,
/// so the stored set is always consistent (every rank at the same
/// step).
type CheckpointStore = Vec<Mutex<Option<(usize, Vec<u8>)>>>;

/// Fault-injection / recovery context one attempt runs under.
struct FaultCtx<'a> {
    chaos: Option<&'a Arc<ChaosWorld>>,
    reliable: Option<&'a Arc<ReliableWorld>>,
    /// Replays performed before this attempt.
    recoveries: usize,
    store: &'a CheckpointStore,
}

impl FaultCtx<'_> {
    /// Whether faults were possible this run (a plan was installed).
    fn chaotic(&self) -> bool {
        self.chaos.is_some()
    }

    fn faults_injected(&self) -> u64 {
        self.chaos.map_or(0, |c| c.injected_total())
    }

    fn retries(&self) -> u64 {
        self.reliable.map_or(0, |r| r.retries())
    }

    fn dedup_dropped(&self) -> u64 {
        self.reliable.map_or(0, |r| r.dedup_dropped())
    }
}

/// Run the coupled solver on `run.ranks` OS threads for `run.steps`
/// DSMC iterations, panicking on failure (the historical signature;
/// use [`run_threaded_result`] to handle faults).
pub fn run_threaded(run: &RunConfig) -> RunReport {
    match run_threaded_result(run) {
        Ok(report) => report,
        Err(e) => panic!("threaded run failed: {e}"),
    }
}

/// Run the coupled solver on `run.ranks` OS threads, applying the
/// configured fault plan and recovery policy.
///
/// With [`RunConfig::fault_plan`] set, each rank's transport becomes
/// `ReliableComm<ChaosComm<ThreadComm>>`; the chaos and reliability
/// worlds are shared across recovery attempts, so kill events stay
/// one-shot and the injected/retry counters in the returned report
/// are cumulative over replays.
///
/// This is the one-shot wrapper around [`EngineSession`]: build a
/// session, attempt until done or the retry policy says stop. Hold an
/// `EngineSession` directly when the engine's lifecycle must outlive
/// one call — e.g. the job server re-attempts a crashed job from the
/// session's checkpoints on another worker.
pub fn run_threaded_result(run: &RunConfig) -> Result<RunReport, RunError> {
    let mut session = EngineSession::new(run);
    loop {
        match session.attempt() {
            Ok(report) => return Ok(report),
            Err(e) => {
                if !session.can_retry_after(&e) {
                    return Err(e);
                }
                session.prepare_retry();
            }
        }
    }
}

/// Engine lifecycle detached from process (and call) lifecycle: mesh,
/// species, initial decomposition, fault-injection worlds and the
/// checkpoint store built once, then any number of [`attempt`]s run
/// against them. Checkpoints and the one-shot fault state live in the
/// session, so an attempt that dies mid-run (worker crash, fault-plan
/// kill) can be resumed later — even from a different thread — by
/// calling [`attempt`] again after [`prepare_retry`].
///
/// [`run_threaded_result`] is the simple driver: it owns a session
/// for exactly one `loop { attempt / prepare_retry }`. The job server
/// stashes sessions across worker deaths instead.
///
/// [`attempt`]: EngineSession::attempt
/// [`prepare_retry`]: EngineSession::prepare_retry
pub struct EngineSession {
    run: RunConfig,
    nm: Arc<NestedMesh>,
    species: Arc<SpeciesTable>,
    h_id: u8,
    hp_id: u8,
    owner0: Arc<Vec<u32>>,
    xadj: Vec<u32>,
    adjncy: Vec<u32>,
    chaos: Option<Arc<ChaosWorld>>,
    reliable: Option<Arc<ReliableWorld>>,
    store: CheckpointStore,
    recoveries: usize,
    attempts: usize,
}

impl std::fmt::Debug for EngineSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineSession")
            .field("ranks", &self.run.ranks)
            .field("steps", &self.run.steps)
            .field("attempts", &self.attempts)
            .field("recoveries", &self.recoveries)
            .finish_non_exhaustive()
    }
}

impl EngineSession {
    /// Build the immutable world for `run`: mesh hierarchy, species
    /// table, seed decomposition, fault worlds and empty checkpoint
    /// slots. No simulation work happens until [`EngineSession::attempt`].
    pub fn new(run: &RunConfig) -> Self {
        let spec = run.sim.nozzle;
        let coarse = spec.generate();
        let nm = Arc::new(NestedMesh::from_coarse(coarse, move |c, n| {
            spec.classify(c, n)
        }));
        let (species, h_id, hp_id) =
            SpeciesTable::hydrogen_plasma(run.sim.weight_h, run.sim.weight_hplus);
        let species = Arc::new(species);

        // initial unweighted decomposition, shared by all ranks
        let (xadj, adjncy) = nm.coarse.cell_graph();
        let g = partition::Graph::new(xadj.clone(), adjncy.clone(), vec![1; nm.num_coarse()]);
        let owner0 = Arc::new(partition::part_graph_kway(
            &g,
            run.ranks,
            partition::KwayOptions::default(),
        ));

        let chaos = run
            .fault_plan
            .clone()
            .map(|plan| ChaosWorld::new(plan, run.ranks));
        let reliable = run
            .fault_plan
            .is_some()
            .then(|| ReliableWorld::new(run.ranks));
        let store: CheckpointStore = (0..run.ranks).map(|_| Mutex::new(None)).collect();

        EngineSession {
            run: run.clone(),
            nm,
            species,
            h_id,
            hp_id,
            owner0,
            xadj,
            adjncy,
            chaos,
            reliable,
            store,
            recoveries: 0,
            attempts: 0,
        }
    }

    /// The configuration this session was built for.
    pub fn config(&self) -> &RunConfig {
        &self.run
    }

    /// Checkpoint restarts performed so far.
    pub fn recoveries(&self) -> usize {
        self.recoveries
    }

    /// Engine attempts performed so far (1 + recoveries once at least
    /// one attempt ran).
    pub fn attempt_count(&self) -> usize {
        self.attempts
    }

    /// Run one world pass: every rank resumes from its checkpoint slot
    /// (step 0 when empty) and steps to completion. On success returns
    /// rank 0's report; on failure returns the first failing rank's
    /// error, stamped with the session's recovery count. The session
    /// stays usable after an error — call [`EngineSession::can_retry_after`]
    /// and [`EngineSession::prepare_retry`] to replay.
    pub fn attempt(&mut self) -> Result<RunReport, RunError> {
        self.attempts += 1;
        let run = &self.run;
        let ctx = FaultCtx {
            chaos: self.chaos.as_ref(),
            reliable: self.reliable.as_ref(),
            recoveries: self.recoveries,
            store: &self.store,
        };
        let (nm, species, owner0) = (&self.nm, &self.species, &self.owner0);
        let (h_id, hp_id) = (self.h_id, self.hp_id);
        let (xadj, adjncy) = (&self.xadj, &self.adjncy);
        let results = run_world(run.ranks, |comm| match (&self.chaos, &self.reliable) {
            (Some(cw), Some(rw)) => {
                let comm = ReliableComm::new(ChaosComm::new(comm, cw.clone()), rw.clone());
                rank_main(
                    &comm, run, nm, species, h_id, hp_id, owner0, xadj, adjncy, &ctx,
                )
            }
            _ => rank_main(
                &comm, run, nm, species, h_id, hp_id, owner0, xadj, adjncy, &ctx,
            ),
        });

        let mut failure: Option<(usize, usize, CommError)> = None;
        let mut rank0 = None;
        for (rank, res) in results.into_iter().enumerate() {
            match res {
                Ok(report) => {
                    if rank == 0 {
                        rank0 = Some(report);
                    }
                }
                Err(RankError::Checkpoint(e)) => return Err(RunError::Checkpoint(e)),
                Err(RankError::Comm { step, error }) => {
                    if failure.is_none() {
                        failure = Some((rank, step, error));
                    }
                }
            }
        }
        match failure {
            None => Ok(rank0.expect("rank 0 report")),
            Some((rank, step, error)) => Err(RunError::RankFailure {
                rank,
                step,
                error,
                recoveries: self.recoveries,
            }),
        }
    }

    /// Whether the configured policy permits replaying after `err`:
    /// a rank failure under [`FaultPolicy::RestartFromCheckpoint`]
    /// with recovery budget left. Checkpoint-restore errors are never
    /// retryable.
    pub fn can_retry_after(&self, err: &RunError) -> bool {
        matches!(err, RunError::RankFailure { .. })
            && self.run.on_fault == FaultPolicy::RestartFromCheckpoint
            && self.recoveries < MAX_RECOVERIES
    }

    /// Arm the next replay: count the recovery and flush the failed
    /// attempt's in-flight chaos holds and reliability journals
    /// (counters stay cumulative). One-shot kill events have already
    /// fired and stay fired, so the replay runs past the kill step.
    pub fn prepare_retry(&mut self) {
        self.recoveries += 1;
        if let Some(cw) = &self.chaos {
            cw.reset_pairs();
        }
        if let Some(rw) = &self.reliable {
            rw.reset();
        }
    }
}

/// Serialise the particles of `buf` that no longer belong to `me`
/// straight into their destinations' wire buffers, building the keep
/// mask in the same pass. Compaction is left to the caller — under an
/// overlapped hierarchical exchange it runs while the sends are in
/// flight. Returns the emigrant count.
fn pack_emigrants(
    buf: &ParticleBuffer,
    owner: &[u32],
    me: usize,
    ranks: usize,
    scratch: &mut ExchangeScratch,
) -> usize {
    scratch.outgoing.resize_with(ranks, Vec::new);
    for b in scratch.outgoing.iter_mut() {
        b.clear();
    }
    scratch.keep.clear();
    scratch.keep.resize(buf.len(), true);
    let mut emigrants = 0usize;
    for i in 0..buf.len() {
        let dest = owner[buf.cell[i] as usize] as usize;
        if dest != me {
            pack_index(buf, i, &mut scratch.outgoing[dest]);
            scratch.keep[i] = false;
            emigrants += 1;
        }
    }
    emigrants
}

/// Resolve [`Strategy::Auto`] for one exchange: every rank contributes
/// its per-destination byte counts (8·ranks bytes), rank 0 assembles
/// the migration byte matrix and scores the concrete strategies with
/// the cost model, and the 1-byte pick is broadcast. The pick only
/// changes the message schedule — every strategy delivers identical
/// buffers — so the machine profile behind `cost` can never affect
/// physics.
fn resolve_strategy<C: Comm>(
    comm: &C,
    configured: Strategy,
    outgoing: &[Vec<u8>],
    cost: &CostModel,
) -> CommResult<Strategy> {
    if configured != Strategy::Auto {
        return Ok(configured);
    }
    let mut row = Vec::with_capacity(outgoing.len() * 8);
    for b in outgoing {
        row.extend_from_slice(&(b.len() as u64).to_le_bytes());
    }
    let choice = gather(comm, 0, row)?.map(|rows| {
        let matrix: Vec<Vec<u64>> = rows
            .iter()
            .map(|r| {
                r.chunks_exact(8)
                    .map(|c| {
                        let mut w = [0u8; 8];
                        w.copy_from_slice(c);
                        u64::from_le_bytes(w)
                    })
                    .collect()
            })
            .collect();
        let pick = cost.pick_strategy(&matrix);
        let idx = Strategy::CONCRETE
            .iter()
            .position(|&s| s == pick)
            .expect("pick is concrete");
        vec![idx as u8]
    });
    match broadcast(comm, 0, choice)?.first() {
        Some(&i) if (i as usize) < Strategy::CONCRETE.len() => Ok(Strategy::CONCRETE[i as usize]),
        _ => Err(CommError::Malformed {
            what: "auto strategy pick",
        }),
    }
}

/// What [`migrate`] may defer into the overlapped send window.
#[derive(Clone, Copy)]
struct MigrateFlags {
    /// Run compaction (and pre-bucketing) inside the hierarchical
    /// exchange's post-isend window ([`RunConfig::overlap`]).
    overlap: bool,
    /// Pre-build the collide cell lists for the immediately following
    /// collide pass (DSMC exchange only).
    prebucket: bool,
}

/// One full particle migration: pack emigrants, resolve the strategy,
/// run the wire exchange through the reused scratch buffers, unpack
/// immigrants. Returns the concrete strategy that carried it.
///
/// Under [`Strategy::Hier`] with `overlap` set, the buffer compaction
/// (and, for the DSMC exchange, the collide pre-bucketing — set
/// `prebucket`) runs inside [`exchange_hier_overlapped`]'s window:
/// after the phase-1 nonblocking sends are posted, before the first
/// fence-and-drain. Only RNG-free work moves into the window, so the
/// delivered state is bitwise identical to the sequential path either
/// way (compaction order relative to the wire is unobservable, and
/// pre-built collide buckets list the same indices in the same
/// order).
fn migrate<C: Comm>(
    comm: &C,
    configured: Strategy,
    cost: &CostModel,
    nodes: &NodeMap,
    flags: MigrateFlags,
    eng: &mut RankEngine,
    owner: &[u32],
) -> CommResult<Strategy> {
    let MigrateFlags { overlap, prebucket } = flags;
    let me = comm.rank();
    let RankEngine {
        particles,
        exch,
        collisions,
        h_id,
        ..
    } = eng;
    let emigrants = pack_emigrants(particles, owner, me, comm.size(), exch);
    let strategy = resolve_strategy(comm, configured, &exch.outgoing, cost)?;
    let ExchangeScratch {
        keep,
        outgoing,
        incoming,
    } = exch;
    let overlapped = strategy == Strategy::Hier && overlap;
    if !overlapped && emigrants > 0 {
        particles.compact(keep);
    }
    if strategy == Strategy::Hier {
        let do_prebucket = overlapped && prebucket;
        exchange_hier_overlapped(comm, nodes, outgoing, incoming, || {
            if overlapped {
                if emigrants > 0 {
                    particles.compact(keep);
                }
                if do_prebucket {
                    collisions.prebucket(particles, *h_id);
                }
            }
        })?;
        let from = particles.len();
        for inc in incoming.iter() {
            unpack_all(inc, particles);
        }
        if do_prebucket {
            collisions.extend_bucket(particles, from, *h_id);
        }
    } else {
        exchange_into(comm, strategy, outgoing, incoming)?;
        for inc in incoming.iter() {
            unpack_all(inc, particles);
        }
    }
    Ok(strategy)
}

/// Tally one resolved exchange into the CONCRETE-ordered counters,
/// returning the concrete index.
fn tally(uses: &mut [u64; 4], s: Strategy) -> usize {
    let idx = Strategy::CONCRETE
        .iter()
        .position(|&c| c == s)
        .expect("resolved strategy is concrete");
    uses[idx] += 1;
    idx
}

/// Real-communication backend: `vmpi` collectives between the phases,
/// measured [`WallClock`] timing, measured-lii rebalancing
/// (Algorithm 1).
///
/// The [`Backend`] trait is infallible, so communication errors are
/// *latched*: the first [`CommError`] is stored, the rank aborts its
/// comm (collapsing peers' blocking operations promptly), and every
/// later comm-touching backend call short-circuits to a local
/// fallback. The run harness checks [`ThreadedBackend::fault`] after
/// each step and discards the poisoned rank state.
pub struct ThreadedBackend<'a, C: Comm> {
    comm: &'a C,
    strategy: Strategy,
    /// Parameters for the Auto decision rule. The threaded backend
    /// has no real α/β of its own, so the Tianhe-2 profile is the
    /// documented default; see [`resolve_strategy`] for why this can
    /// never change the physics.
    cost: CostModel,
    /// Node grouping for [`Strategy::Hier`] (from
    /// [`RunConfig::ranks_per_node`]; 0 = two equal halves).
    nodes: NodeMap,
    /// Overlap compaction/pre-bucketing with the hierarchical
    /// exchange (from [`RunConfig::overlap`]).
    overlap: bool,
    owner: Vec<u32>,
    xadj: &'a [u32],
    adjncy: &'a [u32],
    /// Unified particle/field ownership (default) or the split
    /// Eulerian/Lagrangian mode: the field grid stays statically
    /// block-partitioned and the charge reduction becomes a per-owner
    /// gather/scatter (see [`Backend::reduce_charge`]).
    decomp: Decomposition,
    rebalancer: Option<Rebalancer>,
    clock: WallClock,
    strategy_uses: [u64; 4],
    rebalance_migrated: u64,
    /// Per-rank populations from the Reindex allgather (reused for
    /// the step trace's share).
    pops: Vec<u64>,
    /// World counter values at the last step boundary (the per-step
    /// deltas telescope, so trace sums equal the run totals exactly).
    comm_mark: (u64, u64),
    uses_mark: [u64; 4],
    /// Accumulated per-step deltas = run totals for the report.
    total_tx: u64,
    total_bytes: u64,
    /// Attribution of the exchange in flight, for the pipeline's
    /// exchange events.
    pending_exchange: Option<ExchangeInfo>,
    /// First communication error observed; once set, comm-touching
    /// calls short-circuit (the rank's state is already condemned).
    fault: Option<CommError>,
}

impl<'a, C: Comm> ThreadedBackend<'a, C> {
    pub fn new(
        comm: &'a C,
        run: &RunConfig,
        owner0: &[u32],
        xadj: &'a [u32],
        adjncy: &'a [u32],
    ) -> Self {
        ThreadedBackend {
            comm,
            strategy: run.strategy,
            cost: CostModel::new(MachineProfile::tianhe2(), comm.size()),
            nodes: if run.ranks_per_node == 0 {
                NodeMap::default_for(comm.size())
            } else {
                NodeMap::grouped(comm.size(), run.ranks_per_node)
            },
            overlap: run.overlap,
            owner: owner0.to_vec(),
            xadj,
            adjncy,
            decomp: run.decomposition,
            rebalancer: run.rebalance.map(|mut rc| {
                if run.decomposition == Decomposition::EulLag {
                    // the field grid is statically block-partitioned
                    // under the split mode, so the balancer weighs
                    // particle work only
                    rc.wlm.w_cell = 0;
                }
                Rebalancer::new(rc)
            }),
            clock: WallClock::start(),
            strategy_uses: [0; 4],
            rebalance_migrated: 0,
            pops: Vec::new(),
            comm_mark: (0, 0),
            uses_mark: [0; 4],
            total_tx: 0,
            total_bytes: 0,
            pending_exchange: None,
            fault: None,
        }
    }

    /// The first communication error this backend latched, if any.
    pub fn fault(&self) -> Option<CommError> {
        self.fault
    }

    /// The coarse-cell ownership map the backend is running under
    /// (changes when the balancer remaps).
    pub fn owner(&self) -> &[u32] {
        &self.owner
    }

    /// Latch the first fault and abort this rank's comm so peers
    /// blocked on it collapse with [`CommError::PeerDead`] instead of
    /// waiting out their timeouts.
    fn latch(&mut self, error: CommError) {
        if self.fault.is_none() {
            self.fault = Some(error);
            self.comm.abort();
        }
    }

    /// Carry one migration and record its attribution: the strategy
    /// index plus the world-counter delta observed around it. The
    /// delta is best-effort per exchange (other ranks may be
    /// mid-flight); per-*step* deltas are exact. `prebucket` allows
    /// the overlapped hierarchical path to pre-bucket the collide
    /// lists (DSMC exchange only — the buckets must be consumed by
    /// the very next collide pass).
    fn migrate_and_tally(&mut self, eng: &mut RankEngine, prebucket: bool) {
        if self.fault.is_some() {
            return;
        }
        let before = (self.comm.stats().transactions(), self.comm.stats().bytes());
        match migrate(
            self.comm,
            self.strategy,
            &self.cost,
            &self.nodes,
            MigrateFlags {
                overlap: self.overlap,
                prebucket,
            },
            eng,
            &self.owner,
        ) {
            Ok(s) => {
                let idx = tally(&mut self.strategy_uses, s);
                self.pending_exchange = Some(ExchangeInfo {
                    strategy: idx,
                    transactions: self.comm.stats().transactions().saturating_sub(before.0),
                    bytes: self.comm.stats().bytes().saturating_sub(before.1),
                    max_rank_msgs: 0,
                    node_pairs: 0,
                    aggregated_bytes: 0,
                });
            }
            Err(e) => self.latch(e),
        }
    }
}

impl<C: Comm> Backend for ThreadedBackend<'_, C> {
    fn begin_step(&mut self, _eng: &RankEngine) {
        self.clock.begin_step();
    }

    fn lap(
        &mut self,
        phase: Phase,
        _sub: usize,
        _eng: &RankEngine,
        _rec: &StepRecord,
        bd: &mut Breakdown,
    ) {
        self.clock.lap(bd, phase);
    }

    fn exchange(&mut self, eng: &mut RankEngine, phase: Phase, _sub: usize) {
        // only the DSMC exchange is immediately followed by the
        // collide pass, so only it may pre-bucket under overlap
        self.migrate_and_tally(eng, phase == Phase::DsmcExchange);
    }

    fn take_exchange_info(&mut self) -> Option<ExchangeInfo> {
        self.pending_exchange.take()
    }

    fn step_comm(&mut self) -> StepComm {
        let now = (self.comm.stats().transactions(), self.comm.stats().bytes());
        let delta = (
            now.0.saturating_sub(self.comm_mark.0),
            now.1.saturating_sub(self.comm_mark.1),
        );
        self.comm_mark = now;
        self.total_tx += delta.0;
        self.total_bytes += delta.1;
        let mut uses = [0u64; 4];
        for (u, (&cur, &mark)) in uses
            .iter_mut()
            .zip(self.strategy_uses.iter().zip(&self.uses_mark))
        {
            *u = cur - mark;
        }
        self.uses_mark = self.strategy_uses;
        StepComm {
            transactions: delta.0,
            bytes: delta.1,
            strategy_uses: uses,
        }
    }

    fn reduce_charge(&mut self, _eng: &RankEngine, node_charge: Vec<f64>) -> Vec<f64> {
        if self.fault.is_some() {
            return node_charge;
        }
        // sum boundary/node charge across ranks (paper §IV-C
        // reduction); every rank then solves the replicated system.
        // Under the Eulerian/Lagrangian split each static field owner
        // reduces its own block and scatters it back — the additions
        // happen in the same rank order, so the result is bitwise
        // identical to the allreduce.
        let reduced = if self.decomp == Decomposition::EulLag {
            eullag_reduce_charge(self.comm, &node_charge)
        } else {
            allreduce_sum_f64(self.comm, &node_charge)
        };
        match reduced {
            Ok(summed) => summed,
            Err(e) => {
                self.latch(e);
                node_charge
            }
        }
    }

    fn reindex_base(&mut self, eng: &RankEngine) -> u64 {
        if self.fault.is_some() {
            return 0;
        }
        match allgather_u64(self.comm, eng.particles.len() as u64) {
            Ok(pops) => {
                self.pops = pops;
                self.pops[..self.comm.rank()].iter().sum()
            }
            Err(e) => {
                self.latch(e);
                0
            }
        }
    }

    fn rebalance(
        &mut self,
        eng: &mut RankEngine,
        bd: &Breakdown,
        _rec: &StepRecord,
    ) -> StepOutcome {
        if self.fault.is_some() {
            return StepOutcome::default();
        }
        // share measured times: (total, migration, poisson) triples —
        // extended with the per-phase kernel times when the
        // timer-augmented cost source wants samples (the wire layout
        // stays the 3-float triple otherwise, so the default path's
        // message stream is untouched)
        let sampling = self
            .rebalancer
            .as_ref()
            .is_some_and(|rb| rb.wants_samples());
        let mine: Vec<f64> = if sampling {
            vec![
                bd.total(),
                bd.migration(),
                bd.poisson(),
                bd[Phase::DsmcMove],
                bd[Phase::ColliReact],
                bd[Phase::PicMove],
            ]
        } else {
            vec![bd.total(), bd.migration(), bd.poisson()]
        };
        let width = mine.len();
        let all = match allgather_f64(self.comm, &mine) {
            Ok(all) => all,
            Err(e) => {
                self.latch(e);
                return StepOutcome::default();
            }
        };
        let times: Vec<RankTimes> = all
            .chunks_exact(width)
            .map(|c| RankTimes {
                total: c[0],
                migration: c[1],
                poisson: c[2],
            })
            .collect();
        // world-wide kernel seconds, summed in rank order
        let phase_secs: [f64; 3] = if sampling {
            let mut s = [0.0; 3];
            for c in all.chunks_exact(width) {
                s[0] += c[3];
                s[1] += c[4];
                s[2] += c[5];
            }
            s
        } else {
            [0.0; 3]
        };
        let lii = load_imbalance_indicator(&times);
        let mut outcome = StepOutcome {
            lii,
            ..StepOutcome::default()
        };
        if self.rebalancer.is_some() {
            // global per-cell counts (needed by the load model)
            let nc = eng.nm.num_coarse();
            let mut local = vec![0u64; 2 * nc];
            for i in 0..eng.particles.len() {
                let c = eng.particles.cell[i] as usize;
                if eng.particles.species[i] == eng.h_id {
                    local[c] += 1;
                } else {
                    local[nc + c] += 1;
                }
            }
            let global = match allreduce_sum_u64(self.comm, &local) {
                Ok(global) => global,
                Err(e) => {
                    self.latch(e);
                    return outcome;
                }
            };
            let (neutral, charged) = global.split_at(nc);

            // every rank runs the (deterministic) algorithm on the
            // same inputs => identical new ownership everywhere
            let rb = self.rebalancer.as_mut().expect("checked above");
            if sampling {
                // feed the measured kernel seconds and the global work
                // units they covered to the timer-augmented source
                let neutral_total: u64 = neutral.iter().sum();
                let charged_total: u64 = charged.iter().sum();
                let pair_total: u64 = neutral.iter().map(|&n| n * n.saturating_sub(1)).sum();
                rb.observe(&CostSample {
                    dsmc_move_seconds: phase_secs[0],
                    colli_react_seconds: phase_secs[1],
                    pic_move_seconds: phase_secs[2],
                    neutral_total,
                    pair_total,
                    charged_total,
                });
            }
            outcome.cost_source = rb.cost_source_name();
            outcome.decomposition = self.decomp.name();
            outcome.cost_rates = rb.cost_rates();
            let remap_started = std::time::Instant::now();
            if let RebalanceOutcome::Remapped {
                new_owner,
                migration_volume,
                ..
            } = rb.step(
                lii,
                self.xadj,
                self.adjncy,
                neutral,
                charged,
                &self.owner,
                self.comm.size(),
            ) {
                self.owner = new_owner;
                let me = self.comm.rank() as u32;
                let owner = &self.owner;
                eng.injector = Injector::with_filter(&eng.nm.coarse, |t| owner[t as usize] == me);
                self.migrate_and_tally(eng, false);
                self.rebalance_migrated += migration_volume;
                outcome.rebalanced = true;
                outcome.migrated = migration_volume;
                outcome.remap_seconds = remap_started.elapsed().as_secs_f64();
            }
        }
        outcome
    }

    fn end_step(&mut self, _eng: &RankEngine, _bd: &mut Breakdown) {}

    fn share(&self, _eng: &RankEngine) -> Vec<f64> {
        let total = self.pops.iter().sum::<u64>().max(1) as f64;
        self.pops.iter().map(|&p| p as f64 / total).collect()
    }

    fn stats(&self) -> BackendStats {
        BackendStats {
            strategy_uses: self.strategy_uses,
            rebalances: self.rebalancer.as_ref().map_or(0, |r| r.rebalance_count),
            rebalance_migrated: self.rebalance_migrated,
            transactions: self.total_tx,
            bytes: self.total_bytes,
        }
    }
}

/// Gather/scatter charge reduction of the Eulerian/Lagrangian split
/// (DESIGN.md §15): the field grid is statically block-partitioned
/// over ranks, each owner gathers every rank's contribution to its
/// block, reduces them in rank order, and broadcasts the reduced
/// block back so every rank can run the replicated Poisson solve.
/// Summing per element in rank order makes the result bitwise
/// identical to [`allreduce_sum_f64`] over the same inputs.
fn eullag_reduce_charge<C: Comm>(comm: &C, node_charge: &[f64]) -> CommResult<Vec<f64>> {
    let me = comm.rank();
    let ranges = block_ranges(node_charge.len(), comm.size());
    // phase 1: each owner gathers and reduces its block
    let mut owned: Vec<f64> = Vec::new();
    for (root, range) in ranges.iter().enumerate() {
        let bytes: Vec<u8> = node_charge[range.clone()]
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .collect();
        if let Some(parts) = gather(comm, root, bytes)? {
            let mut acc = vec![0.0f64; range.len()];
            for part in &parts {
                if part.len() != range.len() * 8 {
                    return Err(CommError::Malformed {
                        what: "eullag charge block",
                    });
                }
                for (a, chunk) in acc.iter_mut().zip(part.chunks_exact(8)) {
                    *a += f64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
                }
            }
            owned = acc;
        }
    }
    // phase 2: owners scatter the reduced blocks; every rank
    // reassembles the full vector
    let mut out = vec![0.0f64; node_charge.len()];
    for (root, range) in ranges.iter().enumerate() {
        let mine = (me == root).then(|| {
            owned
                .iter()
                .flat_map(|v| v.to_le_bytes())
                .collect::<Vec<u8>>()
        });
        let block = broadcast(comm, root, mine)?;
        if block.len() != range.len() * 8 {
            return Err(CommError::Malformed {
                what: "eullag reduced block",
            });
        }
        for (slot, chunk) in out[range.clone()].iter_mut().zip(block.chunks_exact(8)) {
            *slot = f64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
    }
    Ok(out)
}

/// Read a checkpoint-store slot, surviving a poisoned lock (a rank
/// that panicked while storing): the stored bytes are still the last
/// consistently committed envelope.
fn read_slot(slot: &Mutex<Option<(usize, Vec<u8>)>>) -> Option<(usize, Vec<u8>)> {
    slot.lock().unwrap_or_else(|p| p.into_inner()).clone()
}

#[allow(clippy::too_many_arguments)]
fn rank_main<C: Comm>(
    comm: &C,
    run: &RunConfig,
    nm: &Arc<NestedMesh>,
    species: &Arc<SpeciesTable>,
    h_id: u8,
    hp_id: u8,
    owner0: &[u32],
    xadj: &[u32],
    adjncy: &[u32],
    ctx: &FaultCtx<'_>,
) -> Result<RunReport, RankError> {
    let me = comm.rank();
    let mut eng = RankEngine::for_rank(
        run.sim.clone(),
        nm.clone(),
        species.clone(),
        h_id,
        hp_id,
        owner0,
        me,
        run.threads_per_rank,
    );
    // Resume from the last consistently committed checkpoint, if one
    // exists (a recovery replay); otherwise start from step 0.
    let (start_step, owner) = match read_slot(&ctx.store[me]) {
        Some((next_step, blob)) => {
            let owner = restore_rank(&mut eng, me, &blob).map_err(RankError::Checkpoint)?;
            (next_step, owner)
        }
        None => (0, owner0.to_vec()),
    };
    let mut be = ThreadedBackend::new(comm, run, &owner, xadj, adjncy);
    let pipeline = StepPipeline {
        sort_every: run.sort_every,
    };
    let mut builder = ReportBuilder::new();
    // Rank 0 additionally drives the run's observability: one
    // Recorder taps the shared metrics registry and streams events to
    // the configured trace sink. Other ranks observe nothing.
    let mut recorder = if me == 0 {
        let sink = run.obs.trace.make_sink().map_err(|_| RankError::Comm {
            step: start_step,
            error: CommError::Malformed {
                what: "trace sink creation",
            },
        })?;
        let mut rec = Recorder::new(run.obs.metrics.as_ref(), sink);
        rec.meta(run.ranks, run.steps);
        Some(rec)
    } else {
        None
    };
    for step in start_step..run.steps {
        // fire scheduled stall/kill events for this rank, if any
        if let Err(error) = comm.on_step(step) {
            return Err(RankError::Comm { step, error });
        }
        match recorder.as_mut() {
            Some(rec) => {
                let mut obs = Tee(&mut builder, rec);
                pipeline.run_step(&mut eng, &mut be, &mut obs, step);
            }
            None => {
                pipeline.run_step(&mut eng, &mut be, &mut builder, step);
            }
        }
        if let Some(error) = be.fault() {
            return Err(RankError::Comm { step, error });
        }
        // Consistent checkpoint: the barrier proves every rank
        // reached this fault-free boundary, so the stored set is a
        // coherent restart point even if a fault lands one
        // instruction later.
        if run.checkpoint_every > 0 && (step + 1) % run.checkpoint_every == 0 {
            match comm.barrier() {
                Ok(()) => {
                    let envelope = checkpoint_rank(&eng, be.owner());
                    *ctx.store[me].lock().unwrap_or_else(|p| p.into_inner()) =
                        Some((step + 1, envelope));
                }
                Err(error) => return Err(RankError::Comm { step, error }),
            }
        }
    }
    // Every rank exports its kernel-pool busy time (the registry is
    // shared across the rank threads; names are rank-qualified).
    if let Some(reg) = &run.obs.metrics {
        for (w, b) in eng.pool.busy_seconds().iter().enumerate() {
            reg.gauge(&format!("kernels.rank{me}.worker{w}.busy_seconds"))
                .set(*b);
        }
    }

    // --- final diagnostics: global H density per coarse cell ---------
    let nc = eng.nm.num_coarse();
    let mut counts = vec![0.0f64; nc];
    for i in 0..eng.particles.len() {
        if eng.particles.species[i] == h_id {
            counts[eng.particles.cell[i] as usize] += 1.0;
        }
    }
    let at_diag = |error| RankError::Comm {
        step: run.steps,
        error,
    };
    let counts = allreduce_sum_f64(comm, &counts).map_err(at_diag)?;
    let pops = allgather_u64(comm, eng.particles.len() as u64).map_err(at_diag)?;

    // counters read *after* the diagnostics collectives so faults
    // injected into them are counted too
    let faults_injected = ctx.faults_injected();
    let comm_retries = ctx.retries();
    let comm_dedup_dropped = ctx.dedup_dropped();
    if let Some(rec) = recorder.as_mut() {
        if ctx.chaotic() || ctx.recoveries > 0 {
            rec.fault_summary(
                ctx.recoveries,
                comm_retries,
                comm_dedup_dropped,
                faults_injected,
            );
        }
        rec.finish();
    }

    let stats = be.stats();
    let mut report = builder.finish();
    report.density_h =
        crate::diag::number_density(&counts, &eng.nm.coarse.volumes, species.get(h_id).weight);
    report.population = pops.iter().sum::<u64>() as usize;
    // Backend-accumulated per-step totals, NOT `comm.stats()` read
    // here: the diagnostics collectives above already bumped the raw
    // counters, and the report promises trace sums == totals exactly.
    report.transactions = stats.transactions;
    report.bytes = stats.bytes;
    report.rebalances = stats.rebalances;
    report.rebalance_migrated = stats.rebalance_migrated;
    report.strategy_uses = stats.strategy_uses;
    report.recoveries = ctx.recoveries;
    report.comm_retries = comm_retries;
    report.comm_dedup_dropped = comm_dedup_dropped;
    report.faults_injected = faults_injected;
    Ok(report)
}

/// Reference serial run of the same configuration (the paper's
/// validated serial baseline), returning the same diagnostics — now
/// including a measured breakdown and per-step trace, through the
/// same pipeline.
pub fn run_serial(run: &RunConfig) -> RunReport {
    let mut eng = RankEngine::new(run.sim.clone());
    let mut be = SerialBackend::new();
    let pipeline = StepPipeline {
        sort_every: run.sort_every,
    };
    let mut builder = ReportBuilder::new();
    let sink = run.obs.trace.make_sink().expect("open trace sink");
    let mut rec =
        Recorder::new(run.obs.metrics.as_ref(), sink).with_time_average(run.obs.avg_window);
    rec.meta(1, run.steps);
    for step in 0..run.steps {
        {
            let mut obs = Tee(&mut builder, &mut rec);
            pipeline.run_step(&mut eng, &mut be, &mut obs, step);
        }
        // time-averaged diagnostics are read-only taps: sampling
        // never perturbs the physics, and with avg_window == 0 the
        // samples are dropped before they are even computed
        if run.obs.avg_window > 0 {
            let (neutral, _) = eng.counts_per_cell();
            let counts: Vec<f64> = neutral.iter().map(|&c| c as f64).collect();
            let density = crate::diag::number_density(
                &counts,
                &eng.nm.coarse.volumes,
                eng.species.get(eng.h_id).weight,
            );
            rec.field_sample("density_h", &density);
            rec.field_sample("phi", eng.poisson.phi());
        }
    }
    rec.finish();
    if let Some(reg) = &run.obs.metrics {
        for (w, b) in eng.pool.busy_seconds().iter().enumerate() {
            reg.gauge(&format!("kernels.rank0.worker{w}.busy_seconds"))
                .set(*b);
        }
    }
    let (neutral, _) = eng.counts_per_cell();
    let counts: Vec<f64> = neutral.iter().map(|&c| c as f64).collect();
    let mut report = builder.finish();
    report.density_h = crate::diag::number_density(
        &counts,
        &eng.nm.coarse.volumes,
        eng.species.get(eng.h_id).weight,
    );
    report.population = eng.particles.len();
    if let Some(avg) = rec.time_average() {
        report.density_h_avg = avg.mean("density_h").unwrap_or_default();
        report.phi_avg = avg.mean("phi").unwrap_or_default();
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Dataset, RunConfig};
    use vmpi::{FaultAction, FaultPlan};

    fn quick_run(ranks: usize, strategy: Strategy, lb: bool) -> RunReport {
        let run = RunConfig::builder()
            .paper(Dataset::D1, 0.02)
            .ranks(ranks)
            .seed(5)
            .steps(12)
            .strategy(strategy)
            .rebalance(lb.then(|| balance::RebalanceConfig {
                t_interval: 4,
                ..Default::default()
            }))
            .build()
            .expect("valid test config");
        run_threaded(&run)
    }

    #[test]
    fn threaded_run_produces_particles() {
        let r = quick_run(3, Strategy::Distributed, false);
        assert!(r.population > 0);
        assert!(r.transactions > 0, "ranks must communicate");
        assert!(r.density_h.iter().any(|&d| d > 0.0));
        assert_eq!(r.recoveries, 0, "clean run never recovers");
        assert_eq!(r.faults_injected, 0, "clean run injects nothing");
    }

    #[test]
    fn strategies_agree_statistically() {
        let dc = quick_run(3, Strategy::Distributed, false);
        let cc = quick_run(3, Strategy::Centralized, false);
        // same seeds, same physics: populations must be close
        let diff =
            (dc.population as f64 - cc.population as f64).abs() / dc.population.max(1) as f64;
        assert!(diff < 0.15, "dc {} vs cc {}", dc.population, cc.population);
    }

    #[test]
    fn parallel_matches_serial_density() {
        let run = RunConfig::builder()
            .paper(Dataset::D1, 0.02)
            .ranks(4)
            .seed(5)
            .steps(16)
            .rebalance(None)
            .build()
            .expect("valid test config");
        let par = run_threaded(&run);
        let ser = run_serial(&run);
        // total inventory within statistical scatter
        let tot_par: f64 = par.density_h.iter().sum();
        let tot_ser: f64 = ser.density_h.iter().sum();
        let rel = (tot_par - tot_ser).abs() / tot_ser.max(1e-300);
        assert!(rel < 0.2, "parallel {tot_par} vs serial {tot_ser}");
    }

    #[test]
    fn rebalancing_fires_in_threaded_mode() {
        let r = quick_run(4, Strategy::Distributed, true);
        assert!(r.rebalances >= 1, "threaded balancer never fired");
        assert!(r.population > 0);
        let fired: usize = r.trace.iter().filter(|t| t.rebalanced).count();
        assert_eq!(fired, r.rebalances, "trace must record each rebalance");
    }

    #[test]
    fn sparse_matches_distributed_exactly() {
        // same seeds, and both strategies deliver identical buffers in
        // identical source order — the full pipeline must agree bit
        // for bit, not just statistically. (No load balancer here: its
        // trigger is *measured wall time*, which is nondeterministic
        // across runs regardless of strategy.)
        let dc = quick_run(3, Strategy::Distributed, false);
        let sp = quick_run(3, Strategy::Sparse, false);
        assert_eq!(sp.population, dc.population);
        assert_eq!(sp.density_h, dc.density_h);
        let [_, _, sparse_uses, _] = sp.strategy_uses;
        assert!(sparse_uses > 0, "sparse never carried an exchange");
    }

    #[test]
    fn hier_matches_distributed_exactly() {
        // the hierarchical schedule delivers the same buffers in the
        // same source order as every flat strategy, with or without
        // an explicit node map — the full pipeline must agree bitwise
        let dc = quick_run(4, Strategy::Distributed, false);
        let hier = {
            let run = RunConfig::builder()
                .paper(Dataset::D1, 0.02)
                .ranks(4)
                .seed(5)
                .steps(12)
                .strategy(Strategy::Hier)
                .ranks_per_node(2)
                .rebalance(None)
                .build()
                .expect("valid test config");
            run_threaded(&run)
        };
        assert_eq!(hier.population, dc.population);
        assert_eq!(hier.density_h, dc.density_h);
        let [_, _, _, hier_uses] = hier.strategy_uses;
        assert!(hier_uses > 0, "hier never carried an exchange");
    }

    #[test]
    fn overlapped_hier_is_bitwise_identical_to_sequential_hier() {
        let base = |overlap: bool| {
            let run = RunConfig::builder()
                .paper(Dataset::D1, 0.02)
                .ranks(4)
                .seed(5)
                .steps(12)
                .strategy(Strategy::Hier)
                .ranks_per_node(2)
                .overlap(overlap)
                .rebalance(None)
                .build()
                .expect("valid test config");
            run_threaded(&run)
        };
        let seq = base(false);
        let ov = base(true);
        assert_eq!(ov.population, seq.population);
        assert_eq!(ov.density_h, seq.density_h, "overlap changed physics");
        // the wire schedule must be unchanged too: same exchanges, all
        // hierarchical. (Absolute transaction totals are sampled from
        // the world-shared counter while other ranks may be mid-flight
        // in a collective, so they carry a few messages of run-to-run
        // jitter and are not compared here.)
        assert_eq!(
            ov.strategy_uses, seq.strategy_uses,
            "overlap changed schedule"
        );
    }

    #[test]
    fn auto_resolves_concrete_strategies() {
        let a = quick_run(3, Strategy::Auto, false);
        assert!(a.population > 0);
        let used: u64 = a.strategy_uses.iter().sum();
        // one DSMC exchange + one per PIC substep, every step
        assert!(
            used >= 12,
            "expected an exchange tally per step, got {used}"
        );
        // same seeds → same physics as any fixed strategy
        let dc = quick_run(3, Strategy::Distributed, false);
        assert_eq!(a.population, dc.population);
        assert_eq!(a.density_h, dc.density_h);
    }

    #[test]
    fn every_driver_reports_a_trace() {
        let r = quick_run(3, Strategy::Distributed, false);
        assert_eq!(r.trace.len(), 12);
        for t in &r.trace {
            assert_eq!(t.share.len(), 3);
            assert!((t.share.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
        let run = RunConfig::builder()
            .paper(Dataset::D1, 0.02)
            .ranks(1)
            .seed(5)
            .steps(4)
            .rebalance(None)
            .build()
            .expect("valid test config");
        let s = run_serial(&run);
        assert_eq!(s.trace.len(), 4);
        assert!(s.breakdown.total() > 0.0, "serial breakdown now measured");
        assert!((s.total_time - s.breakdown.total()).abs() < 1e-12);
    }

    #[test]
    fn lossy_transport_matches_the_clean_run_bitwise() {
        let base = |plan: Option<FaultPlan>| {
            RunConfig::builder()
                .paper(Dataset::D1, 0.02)
                .ranks(3)
                .seed(5)
                .steps(12)
                .rebalance(None)
                .fault_plan(plan)
                .build()
                .expect("valid test config")
        };
        let clean = run_threaded(&base(None));
        let plan = FaultPlan::seeded(0xFA11)
            .drops(40)
            .dups(40)
            .delays(40, 3)
            .action(1, 0, 0, FaultAction::Drop);
        let chaotic = run_threaded_result(&base(Some(plan))).expect("reliable layer recovers");
        assert_eq!(chaotic.density_h, clean.density_h);
        assert_eq!(chaotic.population, clean.population);
        assert!(chaotic.faults_injected > 0, "plan must have injected");
        assert!(
            chaotic.comm_retries > 0,
            "the pinned drop must force a retransmission"
        );
    }

    #[test]
    fn abort_policy_surfaces_a_kill() {
        let run = RunConfig::builder()
            .paper(Dataset::D1, 0.02)
            .ranks(3)
            .seed(5)
            .steps(8)
            .rebalance(None)
            .fault_plan(Some(FaultPlan::seeded(1).kill(1, 3)))
            .build()
            .expect("valid test config");
        match run_threaded_result(&run) {
            Err(RunError::RankFailure {
                step, recoveries, ..
            }) => {
                assert!(step >= 3, "no rank can fail before the kill fires");
                assert_eq!(recoveries, 0, "abort policy never replays");
            }
            other => panic!("expected a rank failure, got {other:?}"),
        }
    }

    #[test]
    fn kill_recovers_from_checkpoint_bitwise() {
        let base = |plan: Option<FaultPlan>| {
            RunConfig::builder()
                .paper(Dataset::D1, 0.02)
                .ranks(3)
                .seed(5)
                .steps(12)
                .rebalance(None)
                .checkpoint_every(4)
                .on_fault(FaultPolicy::RestartFromCheckpoint)
                .fault_plan(plan)
                .build()
                .expect("valid test config")
        };
        let clean = run_threaded(&base(None));
        let killed =
            run_threaded_result(&base(Some(FaultPlan::seeded(2).kill(2, 6)))).expect("recovers");
        assert_eq!(killed.recoveries, 1, "exactly one replay");
        assert_eq!(killed.density_h, clean.density_h, "recovery is bitwise");
        assert_eq!(killed.population, clean.population);
        // the replay resumed from the step-4 checkpoint
        assert_eq!(killed.trace.len(), 12 - 4, "trace holds replayed steps");
    }
}
