//! Functional parallel runner: every MPI rank is an OS thread.
//!
//! This is the *real* parallel implementation (paper §IV): ranks own
//! disjoint sets of coarse cells, keep only their own particles,
//! migrate particles with the configured exchange strategy after
//! every move phase, sum boundary charge with an all-reduce before
//! the Poisson solve, and re-decompose with the measured-lii dynamic
//! load balancer. Used for validation (serial vs parallel, paper
//! Fig. 8/9) and for the threaded benches.
//!
//! The step itself is the one [`StepPipeline`]; this module only
//! supplies [`ThreadedBackend`] — real `vmpi` communication plus
//! measured [`crate::engine::WallClock`] timing — and the run
//! harness around it. Rank 0 additionally drives an [`obs::Recorder`]
//! (metrics registry + trace sink) when the run's
//! [`crate::config::ObsConfig`] asks for one.
//!
//! Determinism note: each rank owns an independent RNG stream, so a
//! k-rank run is statistically — not bitwise — equivalent to the
//! serial run, exactly like the paper's MPI solver ("minor
//! differences ... mainly due to random seeds").

use crate::config::RunConfig;
use crate::engine::{
    Backend, BackendStats, ExchangeInfo, ExchangeScratch, RankEngine, SerialBackend, StepComm,
    StepOutcome, StepPipeline, WallClock,
};
use crate::machine::{CostModel, MachineProfile};
use crate::report::{ReportBuilder, RunReport};
use crate::state::StepRecord;
use crate::timers::{Breakdown, Phase};
use balance::{load_imbalance_indicator, RankTimes, RebalanceOutcome, Rebalancer};
use dsmc::Injector;
use mesh::NestedMesh;
use obs::{Recorder, Tee};
use particles::{pack_index, unpack_all, ParticleBuffer, SpeciesTable};
use std::sync::Arc;
use vmpi::collectives::{
    allgather_f64, allgather_u64, allreduce_sum_f64, allreduce_sum_u64, broadcast, gather,
};
use vmpi::{exchange_into, run_world, Comm, Strategy, ThreadComm};

/// Result of a threaded run (as returned by rank 0) — the shared
/// [`RunReport`].
pub type ThreadedRunResult = RunReport;

/// Run the coupled solver on `run.ranks` OS threads for `run.steps`
/// DSMC iterations.
pub fn run_threaded(run: &RunConfig) -> RunReport {
    let spec = run.sim.nozzle;
    let coarse = spec.generate();
    let nm = Arc::new(NestedMesh::from_coarse(coarse, move |c, n| {
        spec.classify(c, n)
    }));
    let (species, h_id, hp_id) =
        SpeciesTable::hydrogen_plasma(run.sim.weight_h, run.sim.weight_hplus);
    let species = Arc::new(species);

    // initial unweighted decomposition, shared by all ranks
    let (xadj, adjncy) = nm.coarse.cell_graph();
    let g = partition::Graph::new(xadj.clone(), adjncy.clone(), vec![1; nm.num_coarse()]);
    let owner0 = Arc::new(partition::part_graph_kway(
        &g,
        run.ranks,
        partition::KwayOptions::default(),
    ));
    let xadj = Arc::new(xadj);
    let adjncy = Arc::new(adjncy);

    let results = run_world(run.ranks, |comm| {
        rank_main(
            comm, run, &nm, &species, h_id, hp_id, &owner0, &xadj, &adjncy,
        )
    });
    results.into_iter().next().expect("rank 0 result")
}

/// Split off the particles of `buf` that no longer belong to `me`,
/// serialising each emigrant straight into its destination's wire
/// buffer in the same pass that builds the keep mask.
fn pack_emigrants(
    buf: &mut ParticleBuffer,
    owner: &[u32],
    me: usize,
    ranks: usize,
    scratch: &mut ExchangeScratch,
) {
    scratch.outgoing.resize_with(ranks, Vec::new);
    for b in scratch.outgoing.iter_mut() {
        b.clear();
    }
    scratch.keep.clear();
    scratch.keep.resize(buf.len(), true);
    let mut emigrants = 0usize;
    for i in 0..buf.len() {
        let dest = owner[buf.cell[i] as usize] as usize;
        if dest != me {
            pack_index(buf, i, &mut scratch.outgoing[dest]);
            scratch.keep[i] = false;
            emigrants += 1;
        }
    }
    if emigrants > 0 {
        buf.compact(&scratch.keep);
    }
}

/// Resolve [`Strategy::Auto`] for one exchange: every rank contributes
/// its per-destination byte counts (8·ranks bytes), rank 0 assembles
/// the migration byte matrix and scores the concrete strategies with
/// the cost model, and the 1-byte pick is broadcast. The pick only
/// changes the message schedule — every strategy delivers identical
/// buffers — so the machine profile behind `cost` can never affect
/// physics.
fn resolve_strategy<C: Comm>(
    comm: &C,
    configured: Strategy,
    outgoing: &[Vec<u8>],
    cost: &CostModel,
) -> Strategy {
    if configured != Strategy::Auto {
        return configured;
    }
    let mut row = Vec::with_capacity(outgoing.len() * 8);
    for b in outgoing {
        row.extend_from_slice(&(b.len() as u64).to_le_bytes());
    }
    let choice = gather(comm, 0, row).map(|rows| {
        let matrix: Vec<Vec<u64>> = rows
            .iter()
            .map(|r| {
                r.chunks_exact(8)
                    .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                    .collect()
            })
            .collect();
        let pick = cost.pick_strategy(&matrix);
        let idx = Strategy::CONCRETE
            .iter()
            .position(|&s| s == pick)
            .expect("pick is concrete");
        vec![idx as u8]
    });
    Strategy::CONCRETE[broadcast(comm, 0, choice)[0] as usize]
}

/// One full particle migration: pack emigrants, resolve the strategy,
/// run the wire exchange through the reused scratch buffers, unpack
/// immigrants. Returns the concrete strategy that carried it.
fn migrate<C: Comm>(
    comm: &C,
    configured: Strategy,
    cost: &CostModel,
    buf: &mut ParticleBuffer,
    owner: &[u32],
    scratch: &mut ExchangeScratch,
) -> Strategy {
    pack_emigrants(buf, owner, comm.rank(), comm.size(), scratch);
    let strategy = resolve_strategy(comm, configured, &scratch.outgoing, cost);
    exchange_into(comm, strategy, &mut scratch.outgoing, &mut scratch.incoming);
    for inc in &scratch.incoming {
        unpack_all(inc, buf);
    }
    strategy
}

/// Tally one resolved exchange into the CONCRETE-ordered counters,
/// returning the concrete index.
fn tally(uses: &mut [u64; 3], s: Strategy) -> usize {
    let idx = Strategy::CONCRETE
        .iter()
        .position(|&c| c == s)
        .expect("resolved strategy is concrete");
    uses[idx] += 1;
    idx
}

/// Real-communication backend: `vmpi` collectives between the phases,
/// measured [`WallClock`] timing, measured-lii rebalancing
/// (Algorithm 1).
pub struct ThreadedBackend<'a, C: Comm> {
    comm: &'a C,
    strategy: Strategy,
    /// Parameters for the Auto decision rule. The threaded backend
    /// has no real α/β of its own, so the Tianhe-2 profile is the
    /// documented default; see [`resolve_strategy`] for why this can
    /// never change the physics.
    cost: CostModel,
    owner: Vec<u32>,
    xadj: &'a [u32],
    adjncy: &'a [u32],
    rebalancer: Option<Rebalancer>,
    clock: WallClock,
    strategy_uses: [u64; 3],
    rebalance_migrated: u64,
    /// Per-rank populations from the Reindex allgather (reused for
    /// the step trace's share).
    pops: Vec<u64>,
    /// World counter values at the last step boundary (the per-step
    /// deltas telescope, so trace sums equal the run totals exactly).
    comm_mark: (u64, u64),
    uses_mark: [u64; 3],
    /// Accumulated per-step deltas = run totals for the report.
    total_tx: u64,
    total_bytes: u64,
    /// Attribution of the exchange in flight, for the pipeline's
    /// exchange events.
    pending_exchange: Option<ExchangeInfo>,
}

impl<'a, C: Comm> ThreadedBackend<'a, C> {
    pub fn new(
        comm: &'a C,
        run: &RunConfig,
        owner0: &[u32],
        xadj: &'a [u32],
        adjncy: &'a [u32],
    ) -> Self {
        ThreadedBackend {
            comm,
            strategy: run.strategy,
            cost: CostModel::new(MachineProfile::tianhe2(), comm.size()),
            owner: owner0.to_vec(),
            xadj,
            adjncy,
            rebalancer: run.rebalance.map(Rebalancer::new),
            clock: WallClock::start(),
            strategy_uses: [0; 3],
            rebalance_migrated: 0,
            pops: Vec::new(),
            comm_mark: (0, 0),
            uses_mark: [0; 3],
            total_tx: 0,
            total_bytes: 0,
            pending_exchange: None,
        }
    }

    /// Carry one migration and record its attribution: the strategy
    /// index plus the world-counter delta observed around it. The
    /// delta is best-effort per exchange (other ranks may be
    /// mid-flight); per-*step* deltas are exact.
    fn migrate_and_tally(&mut self, eng: &mut RankEngine) {
        let before = (self.comm.stats().transactions(), self.comm.stats().bytes());
        let s = migrate(
            self.comm,
            self.strategy,
            &self.cost,
            &mut eng.particles,
            &self.owner,
            &mut eng.exch,
        );
        let idx = tally(&mut self.strategy_uses, s);
        self.pending_exchange = Some(ExchangeInfo {
            strategy: idx,
            transactions: self.comm.stats().transactions().saturating_sub(before.0),
            bytes: self.comm.stats().bytes().saturating_sub(before.1),
            max_rank_msgs: 0,
        });
    }
}

impl<C: Comm> Backend for ThreadedBackend<'_, C> {
    fn begin_step(&mut self, _eng: &RankEngine) {
        self.clock.begin_step();
    }

    fn lap(
        &mut self,
        phase: Phase,
        _sub: usize,
        _eng: &RankEngine,
        _rec: &StepRecord,
        bd: &mut Breakdown,
    ) {
        self.clock.lap(bd, phase);
    }

    fn exchange(&mut self, eng: &mut RankEngine, _phase: Phase, _sub: usize) {
        self.migrate_and_tally(eng);
    }

    fn take_exchange_info(&mut self) -> Option<ExchangeInfo> {
        self.pending_exchange.take()
    }

    fn step_comm(&mut self) -> StepComm {
        let now = (self.comm.stats().transactions(), self.comm.stats().bytes());
        let delta = (
            now.0.saturating_sub(self.comm_mark.0),
            now.1.saturating_sub(self.comm_mark.1),
        );
        self.comm_mark = now;
        self.total_tx += delta.0;
        self.total_bytes += delta.1;
        let mut uses = [0u64; 3];
        for (u, (&cur, &mark)) in uses
            .iter_mut()
            .zip(self.strategy_uses.iter().zip(&self.uses_mark))
        {
            *u = cur - mark;
        }
        self.uses_mark = self.strategy_uses;
        StepComm {
            transactions: delta.0,
            bytes: delta.1,
            strategy_uses: uses,
        }
    }

    fn reduce_charge(&mut self, _eng: &RankEngine, node_charge: Vec<f64>) -> Vec<f64> {
        // sum boundary/node charge across ranks (paper §IV-C
        // reduction); every rank then solves the replicated system
        allreduce_sum_f64(self.comm, &node_charge)
    }

    fn reindex_base(&mut self, eng: &RankEngine) -> u64 {
        self.pops = allgather_u64(self.comm, eng.particles.len() as u64);
        self.pops[..self.comm.rank()].iter().sum()
    }

    fn rebalance(
        &mut self,
        eng: &mut RankEngine,
        bd: &Breakdown,
        _rec: &StepRecord,
    ) -> StepOutcome {
        // share measured times: (total, migration, poisson) triples
        let mine = [bd.total(), bd.migration(), bd.poisson()];
        let all = allgather_f64(self.comm, &mine);
        let times: Vec<RankTimes> = all
            .chunks_exact(3)
            .map(|c| RankTimes {
                total: c[0],
                migration: c[1],
                poisson: c[2],
            })
            .collect();
        let lii = load_imbalance_indicator(&times);
        let mut outcome = StepOutcome {
            lii,
            ..StepOutcome::default()
        };
        if self.rebalancer.is_some() {
            // global per-cell counts (needed by the load model)
            let nc = eng.nm.num_coarse();
            let mut local = vec![0u64; 2 * nc];
            for i in 0..eng.particles.len() {
                let c = eng.particles.cell[i] as usize;
                if eng.particles.species[i] == eng.h_id {
                    local[c] += 1;
                } else {
                    local[nc + c] += 1;
                }
            }
            let global = allreduce_sum_u64(self.comm, &local);
            let (neutral, charged) = global.split_at(nc);

            // every rank runs the (deterministic) algorithm on the
            // same inputs => identical new ownership everywhere
            let rb = self.rebalancer.as_mut().expect("checked above");
            let remap_started = std::time::Instant::now();
            if let RebalanceOutcome::Remapped {
                new_owner,
                migration_volume,
                ..
            } = rb.step(
                lii,
                self.xadj,
                self.adjncy,
                neutral,
                charged,
                &self.owner,
                self.comm.size(),
            ) {
                self.owner = new_owner;
                let me = self.comm.rank() as u32;
                let owner = &self.owner;
                eng.injector = Injector::with_filter(&eng.nm.coarse, |t| owner[t as usize] == me);
                self.migrate_and_tally(eng);
                self.rebalance_migrated += migration_volume;
                outcome.rebalanced = true;
                outcome.migrated = migration_volume;
                outcome.remap_seconds = remap_started.elapsed().as_secs_f64();
            }
        }
        outcome
    }

    fn end_step(&mut self, _eng: &RankEngine, _bd: &mut Breakdown) {}

    fn share(&self, _eng: &RankEngine) -> Vec<f64> {
        let total = self.pops.iter().sum::<u64>().max(1) as f64;
        self.pops.iter().map(|&p| p as f64 / total).collect()
    }

    fn stats(&self) -> BackendStats {
        BackendStats {
            strategy_uses: self.strategy_uses,
            rebalances: self.rebalancer.as_ref().map_or(0, |r| r.rebalance_count),
            rebalance_migrated: self.rebalance_migrated,
            transactions: self.total_tx,
            bytes: self.total_bytes,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn rank_main(
    comm: ThreadComm,
    run: &RunConfig,
    nm: &Arc<NestedMesh>,
    species: &Arc<SpeciesTable>,
    h_id: u8,
    hp_id: u8,
    owner0: &[u32],
    xadj: &[u32],
    adjncy: &[u32],
) -> RunReport {
    let mut eng = RankEngine::for_rank(
        run.sim.clone(),
        nm.clone(),
        species.clone(),
        h_id,
        hp_id,
        owner0,
        comm.rank(),
        run.threads_per_rank,
    );
    let mut be = ThreadedBackend::new(&comm, run, owner0, xadj, adjncy);
    let pipeline = StepPipeline {
        sort_every: run.sort_every,
    };
    let mut builder = ReportBuilder::new();
    // Rank 0 additionally drives the run's observability: one
    // Recorder taps the shared metrics registry and streams events to
    // the configured trace sink. Other ranks observe nothing.
    let mut recorder = if comm.rank() == 0 {
        let sink = run.obs.trace.make_sink().expect("open trace sink");
        let mut rec = Recorder::new(run.obs.metrics.as_ref(), sink);
        rec.meta(run.ranks, run.steps);
        Some(rec)
    } else {
        None
    };
    for step in 0..run.steps {
        match recorder.as_mut() {
            Some(rec) => {
                let mut obs = Tee(&mut builder, rec);
                pipeline.run_step(&mut eng, &mut be, &mut obs, step);
            }
            None => {
                pipeline.run_step(&mut eng, &mut be, &mut builder, step);
            }
        }
    }
    if let Some(rec) = recorder.as_mut() {
        rec.finish();
    }
    // Every rank exports its kernel-pool busy time (the registry is
    // shared across the rank threads; names are rank-qualified).
    if let Some(reg) = &run.obs.metrics {
        for (w, b) in eng.pool.busy_seconds().iter().enumerate() {
            reg.gauge(&format!(
                "kernels.rank{}.worker{}.busy_seconds",
                comm.rank(),
                w
            ))
            .set(*b);
        }
    }

    // --- final diagnostics: global H density per coarse cell ---------
    let nc = eng.nm.num_coarse();
    let mut counts = vec![0.0f64; nc];
    for i in 0..eng.particles.len() {
        if eng.particles.species[i] == h_id {
            counts[eng.particles.cell[i] as usize] += 1.0;
        }
    }
    let counts = allreduce_sum_f64(&comm, &counts);
    let pops = allgather_u64(&comm, eng.particles.len() as u64);

    let stats = be.stats();
    let mut report = builder.finish();
    report.density_h =
        crate::diag::number_density(&counts, &eng.nm.coarse.volumes, species.get(h_id).weight);
    report.population = pops.iter().sum::<u64>() as usize;
    // Backend-accumulated per-step totals, NOT `comm.stats()` read
    // here: the diagnostics collectives above already bumped the raw
    // counters, and the report promises trace sums == totals exactly.
    report.transactions = stats.transactions;
    report.bytes = stats.bytes;
    report.rebalances = stats.rebalances;
    report.rebalance_migrated = stats.rebalance_migrated;
    report.strategy_uses = stats.strategy_uses;
    report
}

/// Reference serial run of the same configuration (the paper's
/// validated serial baseline), returning the same diagnostics — now
/// including a measured breakdown and per-step trace, through the
/// same pipeline.
pub fn run_serial(run: &RunConfig) -> RunReport {
    let mut eng = RankEngine::new(run.sim.clone());
    let mut be = SerialBackend::new();
    let pipeline = StepPipeline {
        sort_every: run.sort_every,
    };
    let mut builder = ReportBuilder::new();
    let sink = run.obs.trace.make_sink().expect("open trace sink");
    let mut rec = Recorder::new(run.obs.metrics.as_ref(), sink);
    rec.meta(1, run.steps);
    for step in 0..run.steps {
        let mut obs = Tee(&mut builder, &mut rec);
        pipeline.run_step(&mut eng, &mut be, &mut obs, step);
    }
    rec.finish();
    if let Some(reg) = &run.obs.metrics {
        for (w, b) in eng.pool.busy_seconds().iter().enumerate() {
            reg.gauge(&format!("kernels.rank0.worker{w}.busy_seconds"))
                .set(*b);
        }
    }
    let (neutral, _) = eng.counts_per_cell();
    let counts: Vec<f64> = neutral.iter().map(|&c| c as f64).collect();
    let mut report = builder.finish();
    report.density_h = crate::diag::number_density(
        &counts,
        &eng.nm.coarse.volumes,
        eng.species.get(eng.h_id).weight,
    );
    report.population = eng.particles.len();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Dataset, RunConfig};
    use vmpi::Strategy;

    fn quick_run(ranks: usize, strategy: Strategy, lb: bool) -> RunReport {
        let run = RunConfig::builder()
            .paper(Dataset::D1, 0.02)
            .ranks(ranks)
            .seed(5)
            .steps(12)
            .strategy(strategy)
            .rebalance(lb.then(|| balance::RebalanceConfig {
                t_interval: 4,
                ..Default::default()
            }))
            .build()
            .expect("valid test config");
        run_threaded(&run)
    }

    #[test]
    fn threaded_run_produces_particles() {
        let r = quick_run(3, Strategy::Distributed, false);
        assert!(r.population > 0);
        assert!(r.transactions > 0, "ranks must communicate");
        assert!(r.density_h.iter().any(|&d| d > 0.0));
    }

    #[test]
    fn strategies_agree_statistically() {
        let dc = quick_run(3, Strategy::Distributed, false);
        let cc = quick_run(3, Strategy::Centralized, false);
        // same seeds, same physics: populations must be close
        let diff =
            (dc.population as f64 - cc.population as f64).abs() / dc.population.max(1) as f64;
        assert!(diff < 0.15, "dc {} vs cc {}", dc.population, cc.population);
    }

    #[test]
    fn parallel_matches_serial_density() {
        let run = RunConfig::builder()
            .paper(Dataset::D1, 0.02)
            .ranks(4)
            .seed(5)
            .steps(16)
            .rebalance(None)
            .build()
            .expect("valid test config");
        let par = run_threaded(&run);
        let ser = run_serial(&run);
        // total inventory within statistical scatter
        let tot_par: f64 = par.density_h.iter().sum();
        let tot_ser: f64 = ser.density_h.iter().sum();
        let rel = (tot_par - tot_ser).abs() / tot_ser.max(1e-300);
        assert!(rel < 0.2, "parallel {tot_par} vs serial {tot_ser}");
    }

    #[test]
    fn rebalancing_fires_in_threaded_mode() {
        let r = quick_run(4, Strategy::Distributed, true);
        assert!(r.rebalances >= 1, "threaded balancer never fired");
        assert!(r.population > 0);
        let fired: usize = r.trace.iter().filter(|t| t.rebalanced).count();
        assert_eq!(fired, r.rebalances, "trace must record each rebalance");
    }

    #[test]
    fn sparse_matches_distributed_exactly() {
        // same seeds, and both strategies deliver identical buffers in
        // identical source order — the full pipeline must agree bit
        // for bit, not just statistically. (No load balancer here: its
        // trigger is *measured wall time*, which is nondeterministic
        // across runs regardless of strategy.)
        let dc = quick_run(3, Strategy::Distributed, false);
        let sp = quick_run(3, Strategy::Sparse, false);
        assert_eq!(sp.population, dc.population);
        assert_eq!(sp.density_h, dc.density_h);
        let [_, _, sparse_uses] = sp.strategy_uses;
        assert!(sparse_uses > 0, "sparse never carried an exchange");
    }

    #[test]
    fn auto_resolves_concrete_strategies() {
        let a = quick_run(3, Strategy::Auto, false);
        assert!(a.population > 0);
        let used: u64 = a.strategy_uses.iter().sum();
        // one DSMC exchange + one per PIC substep, every step
        assert!(
            used >= 12,
            "expected an exchange tally per step, got {used}"
        );
        // same seeds → same physics as any fixed strategy
        let dc = quick_run(3, Strategy::Distributed, false);
        assert_eq!(a.population, dc.population);
        assert_eq!(a.density_h, dc.density_h);
    }

    #[test]
    fn every_driver_reports_a_trace() {
        let r = quick_run(3, Strategy::Distributed, false);
        assert_eq!(r.trace.len(), 12);
        for t in &r.trace {
            assert_eq!(t.share.len(), 3);
            assert!((t.share.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
        let run = RunConfig::builder()
            .paper(Dataset::D1, 0.02)
            .ranks(1)
            .seed(5)
            .steps(4)
            .rebalance(None)
            .build()
            .expect("valid test config");
        let s = run_serial(&run);
        assert_eq!(s.trace.len(), 4);
        assert!(s.breakdown.total() > 0.0, "serial breakdown now measured");
        assert!((s.total_time - s.breakdown.total()).abs() < 1e-12);
    }
}
