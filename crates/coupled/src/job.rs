//! The typed job vocabulary of the simulation-as-a-service surface
//! (DESIGN.md §16): what a submission looks like ([`JobSpec`]), how
//! it is addressed ([`JobId`]), where it is in its lifecycle
//! ([`JobStatus`]), and the provenance stamp a served report carries
//! ([`JobMeta`]).
//!
//! These types live in `coupled` — not in the `jobsrv` crate that
//! schedules them — so a report consumer can read job metadata
//! without depending on the server, and `coupled::prelude` exports
//! the whole job vocabulary in one import. The server machinery
//! (queueing, fair share, caching, recovery supervision) is
//! `jobsrv`'s.

use crate::config::RunConfig;
use obs::json::{obj, Json};

/// Server-assigned identity of one submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Scheduling priority of a job *within its tenant*. Across tenants
/// the fair-share queue round-robins regardless of priority, so one
/// tenant's `High` flood cannot starve another tenant's `Low` job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum JobPriority {
    Low,
    #[default]
    Normal,
    High,
}

impl JobPriority {
    /// Numeric rank for scheduling comparisons (higher runs first).
    pub fn rank(self) -> u8 {
        match self {
            JobPriority::Low => 0,
            JobPriority::Normal => 1,
            JobPriority::High => 2,
        }
    }

    /// Stable short name, used in demo tables and logs.
    pub fn name(self) -> &'static str {
        match self {
            JobPriority::Low => "low",
            JobPriority::Normal => "normal",
            JobPriority::High => "high",
        }
    }
}

/// One submission: the run to execute plus scheduling attributes.
/// Build with [`JobSpec::new`] and the chainable setters.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The (builder-validated) run configuration. Its canonical hash
    /// ([`RunConfig::config_hash`]) is the result-cache key.
    pub run: RunConfig,
    /// Fair-share tenant the job is accounted to.
    pub tenant: String,
    /// Priority within the tenant.
    pub priority: JobPriority,
    /// Free-form label for humans; never affects scheduling or the
    /// cache key.
    pub label: String,
}

impl JobSpec {
    /// A spec for `run` under the default tenant at normal priority.
    pub fn new(run: RunConfig) -> Self {
        JobSpec {
            run,
            tenant: "default".to_string(),
            priority: JobPriority::default(),
            label: String::new(),
        }
    }

    /// A spec for a canned scenario by name (see
    /// [`crate::scenario::CANNED`]), labelled `scenario:<name>`. The
    /// cache key is the lowered config's canonical hash, so two
    /// submissions of the same scenario name — or of TOML text that
    /// lowers to the same physics — coalesce onto one engine run.
    pub fn from_scenario(name: &str) -> Result<Self, crate::scenario::ScenarioError> {
        let sc = crate::scenario::canned(name)?;
        Ok(JobSpec::new(sc.run).label(format!("scenario:{name}")))
    }

    /// Account the job to this fair-share tenant.
    pub fn tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = tenant.into();
        self
    }

    /// Schedule at this priority within the tenant.
    pub fn priority(mut self, priority: JobPriority) -> Self {
        self.priority = priority;
        self
    }

    /// Attach a human-readable label.
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting in the fair-share queue (or coalesced behind an
    /// identical in-flight job).
    Queued,
    /// An engine attempt is executing on a worker.
    Running,
    /// Finished with a report. `cache_hit` is true when the report
    /// was served from the result cache or coalesced onto another
    /// job's engine run instead of running the engine itself.
    Done {
        /// Served without an engine run of its own.
        cache_hit: bool,
    },
    /// Gave up: the engine attempt(s) failed and the retry budget (or
    /// the job's fault policy) forbade another replay.
    Failed {
        /// Human-readable cause (the final [`RunError`] or panic).
        ///
        /// [`RunError`]: crate::threadrun::RunError
        error: String,
    },
}

impl JobStatus {
    /// Whether the job has reached a final state.
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobStatus::Done { .. } | JobStatus::Failed { .. })
    }
}

/// Provenance stamp on a served [`RunReport`]: which job produced it,
/// under which canonical config hash, and at what cost. Exported in
/// the report's JSON (schema v2) under the `"job"` key.
///
/// [`RunReport`]: crate::report::RunReport
#[derive(Debug, Clone, PartialEq)]
pub struct JobMeta {
    /// Server-assigned job id ([`JobId`]'s inner value).
    pub job_id: u64,
    /// Canonical config hash ([`RunConfig::config_hash`]) — the
    /// result-cache key this report is stored under.
    pub config_hash: u64,
    /// True when the report was served from the cache (or coalesced
    /// onto an identical in-flight run) instead of running the engine.
    pub cache_hit: bool,
    /// Wall time from submission to the first engine attempt (or to
    /// cache service).
    pub queue_seconds: f64,
    /// Wall time executing engine attempts (0 for a cache hit).
    pub run_seconds: f64,
    /// Engine attempts performed (1 = clean run; more = worker-death
    /// replays from checkpoints; 0 = cache hit).
    pub attempts: usize,
}

impl JobMeta {
    /// The metadata as one JSON object (what `RunReport::to_json`
    /// embeds under `"job"`).
    pub fn to_json(&self) -> Json {
        obj(vec![
            ("id", Json::U64(self.job_id)),
            (
                "config_hash",
                Json::Str(format!("{:016x}", self.config_hash)),
            ),
            ("cache_hit", Json::Bool(self.cache_hit)),
            ("queue_seconds", Json::Num(self.queue_seconds)),
            ("run_seconds", Json::Num(self.run_seconds)),
            ("attempts", Json::U64(self.attempts as u64)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priorities_order_and_name() {
        assert!(JobPriority::High.rank() > JobPriority::Normal.rank());
        assert!(JobPriority::Normal.rank() > JobPriority::Low.rank());
        assert_eq!(JobPriority::default(), JobPriority::Normal);
        assert_eq!(JobPriority::High.name(), "high");
    }

    #[test]
    fn spec_setters_chain() {
        let run = RunConfig::builder().build().unwrap();
        let spec = JobSpec::new(run)
            .tenant("team-a")
            .priority(JobPriority::High)
            .label("smoke");
        assert_eq!(spec.tenant, "team-a");
        assert_eq!(spec.priority, JobPriority::High);
        assert_eq!(spec.label, "smoke");
        assert_eq!(JobSpec::new(spec.run.clone()).tenant, "default");
    }

    #[test]
    fn status_terminality() {
        assert!(!JobStatus::Queued.is_terminal());
        assert!(!JobStatus::Running.is_terminal());
        assert!(JobStatus::Done { cache_hit: false }.is_terminal());
        assert!(JobStatus::Failed {
            error: "x".to_string()
        }
        .is_terminal());
    }

    #[test]
    fn meta_json_roundtrips() {
        let meta = JobMeta {
            job_id: 42,
            config_hash: 0xdead_beef_0123_4567,
            cache_hit: true,
            queue_seconds: 0.25,
            run_seconds: 0.0,
            attempts: 0,
        };
        let v = obs::json::parse(&meta.to_json().to_string()).unwrap();
        assert_eq!(v.get("id").unwrap().as_u64(), Some(42));
        assert_eq!(
            v.get("config_hash").unwrap().as_str(),
            Some("deadbeef01234567")
        );
        assert_eq!(v.get("cache_hit").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("attempts").unwrap().as_u64(), Some(0));
        assert_eq!(format!("{}", JobId(42)), "job-42");
    }
}
