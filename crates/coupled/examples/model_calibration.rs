//! Model-calibration check: modelled per-phase breakdown with and without the
//! dynamic load balancer at a small scale.
use coupled::*;
use vmpi::Strategy;

fn main() {
    for lb in [false, true] {
        let run = RunConfig::builder()
            .paper(Dataset::D1, 0.02)
            .ranks(4)
            .seed(11)
            .strategy(Strategy::Distributed)
            .rebalance(lb.then(|| balance::RebalanceConfig {
                t_interval: 5,
                ..Default::default()
            }))
            .build()
            .expect("valid calibration config");
        let mut cs = ClusterSim::new(&run, MachineProfile::tianhe2());
        let rep = cs.run(20);
        println!(
            "LB={lb} total={:.4} rebalances={}",
            rep.total_time, rep.rebalances
        );
        println!("{}", rep.breakdown);
    }
}
