//! Model-calibration check: modelled per-phase breakdown with and without the
//! dynamic load balancer at a small scale.
use coupled::*;
use vmpi::Strategy;

fn main() {
    for lb in [false, true] {
        let mut run = RunConfig::paper(Dataset::D1, 0.02, 4);
        run.sim.seed = 11;
        run.strategy = Strategy::Distributed;
        if !lb {
            run.rebalance = None;
        } else {
            run.rebalance = Some(balance::RebalanceConfig {
                t_interval: 5,
                ..Default::default()
            });
        }
        let mut cs = ClusterSim::new(&run, MachineProfile::tianhe2());
        let rep = cs.run(20);
        println!(
            "LB={lb} total={:.4} rebalances={}",
            rep.total_time, rep.rebalances
        );
        println!("{}", rep.breakdown);
    }
}
