#!/usr/bin/env bash
# Tier-1 verification gate: release build, full test suite, and the
# zero-warning lint bar. Run before every merge.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release

echo "== tests (workspace) =="
cargo test --workspace -q

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "verify: OK"
