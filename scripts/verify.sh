#!/usr/bin/env bash
# Tier-1 verification gate: release build, full test suite, the
# zero-warning lint bar, and the formatting check. Run before every
# merge (CI runs exactly this script).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release

echo "== vmpi fast path (comm + chaos + reliability units) =="
cargo test -q -p vmpi

echo "== tests (workspace) =="
cargo test --workspace -q

echo "== chaos gate (seeded fault plans must reproduce clean hashes) =="
cargo test -q --test chaos_guard

echo "== overlap gate (Hier + overlap + threads_per_rank=2 must match DC bitwise) =="
cargo test -q --test engine_guard hier_overlapped_matches_distributed_bitwise

echo "== balance gate (alternative cost sources / decompositions stay pinned) =="
cargo test -q --test balance_guard

echo "== scenario gate (canned scenarios stay golden; subcycle/pump are strict opt-ins) =="
cargo test -q --test scenario_guard

echo "== jobsrv gate (served jobs bitwise-match solo runs; kill mid-job recovers) =="
cargo test -q --test jobsrv_guard

echo "== bench smoke (quick snapshot must emit every kernel row) =="
BENCH_QUICK=1 BENCH_OUT=target/bench_smoke.json \
    cargo run --release -q -p bench --bin bench_snapshot

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== rustdoc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== rustfmt (check) =="
if cargo fmt --version >/dev/null 2>&1; then
    cargo fmt --check
else
    echo "rustfmt not installed; skipping format check"
fi

echo "verify: OK"
