//! Umbrella crate re-exporting the coupled DSMC/PIC workspace.
pub use balance;
pub use coupled;
pub use dsmc;
pub use jobsrv;
pub use mesh;
pub use particles;
pub use partition;
pub use pic;
pub use sparse;
pub use vmpi;
