//! Integration tests of the full coupled DSMC/PIC pipeline across
//! crates: mesh generation → injection → movement → collisions →
//! chemistry → deposition → Poisson → push, over many steps.

use coupled::{CoupledState, Dataset};
use particles::QE;

fn sim() -> CoupledState {
    let mut cfg = Dataset::D1.config(0.03);
    cfg.seed = 99;
    CoupledState::new(cfg)
}

#[test]
fn long_run_stays_physical() {
    let mut st = sim();
    for _ in 0..40 {
        let rec = st.dsmc_step();
        // Poisson must converge every substep at these sizes
        assert_eq!(rec.poisson_iters.len(), st.config.pic_per_dsmc);
    }
    // every particle inside the domain and consistent with its cell
    let (lo, hi) = st.nm.coarse.bbox();
    for p in st.particles.iter() {
        assert!(p.pos.x >= lo.x - 1e-12 && p.pos.x <= hi.x + 1e-12);
        assert!(p.pos.z >= lo.z - 1e-12 && p.pos.z <= hi.z + 1e-12);
        assert!(st.nm.coarse.contains(p.cell as usize, p.pos, 1e-5));
        // velocities bounded: nothing should exceed a few times the
        // 10 km/s drift after thermalisation
        assert!(p.vel.norm() < 3e5, "runaway particle: {:?}", p.vel);
    }
}

#[test]
fn charge_deposited_matches_ion_population() {
    let mut st = sim();
    for _ in 0..20 {
        st.dsmc_step();
    }
    let node_charge = pic::deposit_charge(&st.nm, &st.particles, &st.species);
    let total: f64 = node_charge.iter().sum();
    let n_ions = st
        .particles
        .species
        .iter()
        .filter(|&&s| s == st.hp_id)
        .count();
    let expect = n_ions as f64 * QE * st.species.get(st.hp_id).weight;
    assert!(
        (total - expect).abs() <= 1e-9 * expect.abs().max(1e-30),
        "deposited {total} vs expected {expect}"
    );
}

#[test]
fn mass_balance_injection_vs_outflow() {
    let mut st = sim();
    let mut injected = 0usize;
    let mut exited = 0usize;
    for _ in 0..60 {
        let rec = st.dsmc_step();
        injected += rec.injected_cells.len();
        exited += rec.exited;
    }
    // conservation: injected = resident + exited (chemistry conserves
    // particle count: dissociation/recombination convert species 1:1)
    assert_eq!(injected, st.particles.len() + exited);
}

#[test]
fn plume_advances_downstream_over_time() {
    let mut st = sim();
    let mut front_at = Vec::new();
    for step in 1..=30 {
        st.dsmc_step();
        if step % 10 == 0 {
            let front = st.particles.pz.iter().copied().fold(0.0f64, f64::max);
            front_at.push(front);
        }
    }
    assert!(
        front_at.windows(2).all(|w| w[1] >= w[0] * 0.9),
        "plume front must advance: {front_at:?}"
    );
    assert!(front_at[0] > 0.0);
}

#[test]
fn electric_field_pushes_ions_outward_from_charge() {
    // After enough steps a positive space charge builds where ions
    // concentrate; the resulting field must be finite and the
    // potential positive somewhere inside.
    let mut st = sim();
    for _ in 0..25 {
        st.dsmc_step();
    }
    let phi = st.poisson.phi();
    let max_phi = phi.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let n_ions = st
        .particles
        .species
        .iter()
        .filter(|&&s| s == st.hp_id)
        .count();
    if n_ions > 0 {
        assert!(
            max_phi > 0.0,
            "positive space charge must raise the potential"
        );
    }
    assert!(phi.iter().all(|v| v.is_finite()));
}
