//! Regression guard for the unified step-pipeline engine.
//!
//! The serial/threaded/modelled drivers all execute the one
//! `StepPipeline`; these tests pin their outputs for a fixed seed to
//! the exact values the pre-engine (monolithic) drivers produced, so
//! any refactor that perturbs the phase order, RNG consumption or
//! exchange semantics shows up as a bitwise difference. The load
//! balancer stays off: its trigger is measured wall time, which is
//! nondeterministic across runs.

use coupled::{run_serial, run_threaded, Dataset, RunConfig};

/// FNV-1a over the little-endian bytes of the density field.
fn fnv1a(values: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for v in values {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

fn guard_config() -> RunConfig {
    RunConfig::builder()
        .paper(Dataset::D1, 0.02)
        .ranks(3)
        .seed(4242)
        .steps(12)
        .rebalance(None)
        .build()
        .expect("valid guard config")
}

#[test]
fn threaded_density_is_bitwise_pinned() {
    let r = run_threaded(&guard_config());
    assert_eq!(r.population, 389, "population drifted");
    assert_eq!(r.density_h.len(), 432);
    assert_eq!(
        fnv1a(&r.density_h),
        0x8e483db2789e1ad2,
        "threaded density_h no longer bitwise identical to the pinned baseline"
    );
}

#[test]
fn serial_density_is_bitwise_pinned() {
    let r = run_serial(&guard_config());
    assert_eq!(r.population, 389, "population drifted");
    assert_eq!(r.density_h.len(), 432);
    assert_eq!(
        fnv1a(&r.density_h),
        0x9839330415d13fb3,
        "serial density_h no longer bitwise identical to the pinned baseline"
    );
}
