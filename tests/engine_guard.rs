//! Regression guard for the unified step-pipeline engine.
//!
//! The serial/threaded/modelled drivers all execute the one
//! `StepPipeline`; these tests pin their outputs for a fixed seed to
//! the exact values the pre-engine (monolithic) drivers produced, so
//! any refactor that perturbs the phase order, RNG consumption or
//! exchange semantics shows up as a bitwise difference. The load
//! balancer stays off: its trigger is measured wall time, which is
//! nondeterministic across runs.

use coupled::{run_serial, run_threaded, Dataset, RunConfig};

/// FNV-1a over the little-endian bytes of the density field.
fn fnv1a(values: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for v in values {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

fn guard_config() -> RunConfig {
    RunConfig::builder()
        .paper(Dataset::D1, 0.02)
        .ranks(3)
        .seed(4242)
        .steps(12)
        .rebalance(None)
        .build()
        .expect("valid guard config")
}

#[test]
fn threaded_density_is_bitwise_pinned() {
    let r = run_threaded(&guard_config());
    assert_eq!(r.population, 389, "population drifted");
    assert_eq!(r.density_h.len(), 432);
    assert_eq!(
        fnv1a(&r.density_h),
        0x8e483db2789e1ad2,
        "threaded density_h no longer bitwise identical to the pinned baseline"
    );
}

/// The overlapped hierarchical exchange (DESIGN.md §14) must be a pure
/// transport change: Hier with node grouping, RNG-free overlap enabled
/// and pooled intra-rank workers has to reproduce the plain distributed
/// run bit for bit. Any RNG draw or particle reorder smuggled into the
/// overlap window shows up here.
#[test]
fn hier_overlapped_matches_distributed_bitwise() {
    use vmpi::Strategy;
    let base = RunConfig::builder()
        .paper(Dataset::D1, 0.02)
        .ranks(4)
        .seed(4242)
        .steps(12)
        .threads_per_rank(2)
        .rebalance(None);
    let dc = run_threaded(
        &base
            .clone()
            .strategy(Strategy::Distributed)
            .build()
            .expect("valid DC guard config"),
    );
    let hier = run_threaded(
        &base
            .strategy(Strategy::Hier)
            .ranks_per_node(2)
            .overlap(true)
            .build()
            .expect("valid Hier guard config"),
    );
    assert_eq!(hier.population, dc.population, "population diverged");
    assert_eq!(
        fnv1a(&hier.density_h),
        fnv1a(&dc.density_h),
        "overlapped Hier density_h is not bitwise identical to DC"
    );
    let [_, dc_uses, _, _] = dc.strategy_uses;
    let [_, _, _, hier_uses] = hier.strategy_uses;
    assert!(
        dc_uses > 0 && hier_uses > 0,
        "guards ran the wrong protocol"
    );
}

#[test]
fn serial_density_is_bitwise_pinned() {
    let r = run_serial(&guard_config());
    assert_eq!(r.population, 389, "population drifted");
    assert_eq!(r.density_h.len(), 432);
    assert_eq!(
        fnv1a(&r.density_h),
        0x9839330415d13fb3,
        "serial density_h no longer bitwise identical to the pinned baseline"
    );
}
