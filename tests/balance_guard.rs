//! Regression guard for the pluggable balancing pipeline
//! (DESIGN.md §15).
//!
//! The default mode (paper WLM + unified decomposition) is pinned by
//! `engine_guard`; these tests pin the two alternative modes. The
//! modelled driver is fully deterministic — kernel "timings" are cost
//! model evaluations — so the timer-augmented source and the
//! Eulerian/Lagrangian split each get a bitwise-pinned lii
//! trajectory. On the threaded driver the Eul/Lag gather/scatter
//! charge reduction must be a pure transport change: with the
//! balancer off it has to reproduce the unified run's pinned density
//! bit for bit.

use balance::{CostSourceKind, RebalanceConfig};
use coupled::{run_threaded, ClusterSim, Dataset, Decomposition, MachineProfile, RunConfig};

/// FNV-1a over the little-endian bytes of a float series.
fn fnv1a(values: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for v in values {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

fn modelled_config(cost_source: CostSourceKind, decomposition: Decomposition) -> RunConfig {
    RunConfig::builder()
        .paper(Dataset::D1, 0.02)
        .ranks(3)
        .seed(4242)
        .steps(12)
        .rebalance(Some(RebalanceConfig {
            t_interval: 3,
            threshold: 1.2,
            cost_source,
            ..RebalanceConfig::default()
        }))
        .decomposition(decomposition)
        .build()
        .expect("valid guard config")
}

/// Modelled run → (lii-trajectory hash, rebalance count).
fn modelled_lii(cost_source: CostSourceKind, decomposition: Decomposition) -> (u64, usize) {
    let run = modelled_config(cost_source, decomposition);
    let rep = ClusterSim::new(&run, MachineProfile::tianhe2()).run(12);
    let lii: Vec<f64> = rep.trace.iter().map(|t| t.lii).collect();
    assert_eq!(lii.len(), 12);
    (fnv1a(&lii), rep.rebalances)
}

#[test]
fn timer_augmented_modelled_is_pinned() {
    let (h1, reb1) = modelled_lii(CostSourceKind::TimerAugmented, Decomposition::Unified);
    let (h2, _) = modelled_lii(CostSourceKind::TimerAugmented, Decomposition::Unified);
    assert_eq!(h1, h2, "timer-augmented modelled run is nondeterministic");
    assert!(reb1 > 0, "guard config never rebalanced");
    assert_eq!(
        h1, 0x00be_e894_96b9_27cb,
        "timer-augmented lii trajectory drifted from the pinned baseline"
    );
}

#[test]
fn eullag_modelled_is_pinned() {
    let (h1, reb1) = modelled_lii(CostSourceKind::PaperWlm, Decomposition::EulLag);
    let (h2, _) = modelled_lii(CostSourceKind::PaperWlm, Decomposition::EulLag);
    assert_eq!(h1, h2, "eullag modelled run is nondeterministic");
    assert!(reb1 > 0, "guard config never rebalanced");
    assert_eq!(
        h1, 0xa870_696b_4179_946f,
        "eullag lii trajectory drifted from the pinned baseline"
    );
}

/// A scenario-lowered config drives the balancer exactly like a
/// hand-built one: the high-imbalance jet scenario under the
/// timer-augmented source on the modelled driver gets its own pinned
/// lii trajectory, and the freestream scenario must rebalance too.
#[test]
fn freestream_scenario_timer_augmented_modelled_is_pinned() {
    let lii_of = |name: &str| {
        let mut run = coupled::scenario::canned(name)
            .expect("canned scenario lowers")
            .run;
        run.rebalance = Some(RebalanceConfig {
            t_interval: 3,
            threshold: 1.2,
            cost_source: CostSourceKind::TimerAugmented,
            ..RebalanceConfig::default()
        });
        let steps = run.steps;
        let rep = ClusterSim::new(&run, MachineProfile::tianhe2()).run(steps);
        let lii: Vec<f64> = rep.trace.iter().map(|t| t.lii).collect();
        assert_eq!(lii.len(), steps);
        (fnv1a(&lii), rep.rebalances)
    };
    let (h1, reb1) = lii_of("freestream");
    let (h2, _) = lii_of("freestream");
    assert_eq!(h1, h2, "scenario modelled run is nondeterministic");
    assert!(reb1 > 0, "freestream scenario never rebalanced");
    assert_eq!(
        h1, 0x9f61362858d48efb,
        "freestream timer-augmented lii trajectory drifted from the pinned baseline"
    );
}

/// With the balancer off, the Eul/Lag split only changes *how* the
/// node charge is reduced (per-owner gather/scatter instead of the
/// flat allreduce). The additions happen in the same rank order, so
/// the physics must stay bitwise identical to `engine_guard`'s pinned
/// unified run.
#[test]
fn eullag_threaded_matches_unified_pinned_density() {
    let run = RunConfig::builder()
        .paper(Dataset::D1, 0.02)
        .ranks(3)
        .seed(4242)
        .steps(12)
        .rebalance(None)
        .decomposition(Decomposition::EulLag)
        .build()
        .expect("valid guard config");
    let r = run_threaded(&run);
    assert_eq!(r.population, 389, "population drifted");
    assert_eq!(r.density_h.len(), 432);
    assert_eq!(
        fnv1a(&r.density_h),
        0x8e483db2789e1ad2,
        "eullag charge reduction is not bitwise identical to the unified allreduce"
    );
}

/// The timer-augmented source on the threaded driver feeds measured
/// wall-clock kernel times, so its trajectory is not pinnable — but
/// the run must complete, rebalance, and report the mode it ran.
#[test]
fn timer_augmented_threaded_fires_and_completes() {
    let run = RunConfig::builder()
        .paper(Dataset::D1, 0.02)
        .ranks(3)
        .seed(4242)
        .steps(12)
        .rebalance(Some(RebalanceConfig {
            t_interval: 3,
            threshold: 0.0,
            cost_source: CostSourceKind::TimerAugmented,
            ..RebalanceConfig::default()
        }))
        .build()
        .expect("valid guard config");
    let r = run_threaded(&run);
    assert_eq!(r.trace.len(), 12);
    assert!(r.population > 0);
    assert!(r.rebalances > 0, "threshold 0 must trigger the balancer");
}
