//! Chaos guard: the threaded driver must produce **bitwise identical**
//! results over a deterministically faulty transport (DESIGN.md §12).
//!
//! Every scenario wraps each rank's wire in `ChaosComm` (seeded
//! drop/duplicate/delay/stall/kill injection) under `ReliableComm`
//! (sequencing, dedup, journal retransmission) and asserts the final
//! `density_h` field hashes to exactly the clean run's value — for the
//! 3-rank guard configuration, the same pinned constant
//! `engine_guard` protects — while the report's fault counters prove
//! the faults actually happened and were recovered.
//!
//! The load balancer stays off throughout: its trigger is measured
//! wall time, which is nondeterministic across runs regardless of the
//! transport.

use coupled::prelude::*;
use coupled::{run_threaded_result, FaultPolicy};
use vmpi::FaultAction;

/// FNV-1a over the little-endian bytes of the density field (the same
/// fingerprint `engine_guard` pins).
fn fnv1a(values: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for v in values {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// The `engine_guard` pinned fingerprint of the clean 3-rank run.
const PINNED_3RANK_HASH: u64 = 0x8e483db2789e1ad2;

fn config(ranks: usize, strategy: Strategy, plan: Option<FaultPlan>) -> RunConfig {
    RunConfig::builder()
        .paper(Dataset::D1, 0.02)
        .ranks(ranks)
        .seed(4242)
        .steps(12)
        .strategy(strategy)
        .rebalance(None)
        .fault_plan(plan)
        .build()
        .expect("valid chaos config")
}

/// A lossy-but-survivable plan: seeded rates exercise every fault
/// kind, and the pinned drop + duplicate guarantee at least one
/// retransmission and one dedup discard on every topology.
fn lossy_plan(seed: u64) -> FaultPlan {
    FaultPlan::seeded(seed)
        .drops(35)
        .dups(35)
        .delays(35, 3)
        .action(1, 0, 0, FaultAction::Drop)
        .action(0, 1, 0, FaultAction::Duplicate)
}

#[test]
fn every_strategy_matches_the_clean_hash_under_chaos() {
    for &ranks in &[3usize, 4] {
        let clean = run_threaded(&config(ranks, Strategy::Distributed, None));
        let clean_hash = fnv1a(&clean.density_h);
        if ranks == 3 {
            assert_eq!(clean_hash, PINNED_3RANK_HASH, "clean baseline drifted");
        }
        for (i, &strategy) in [
            Strategy::Centralized,
            Strategy::Distributed,
            Strategy::Sparse,
            Strategy::Auto,
        ]
        .iter()
        .enumerate()
        {
            let plan = lossy_plan(0xC4A0_5000 + (ranks * 16 + i) as u64);
            let r = run_threaded_result(&config(ranks, strategy, Some(plan)))
                .expect("reliability layer must absorb a kill-free plan");
            assert_eq!(
                fnv1a(&r.density_h),
                clean_hash,
                "{strategy:?} at {ranks} ranks diverged under chaos"
            );
            assert_eq!(r.population, clean.population);
            assert!(
                r.faults_injected > 0,
                "{strategy:?}/{ranks}: plan injected nothing"
            );
            assert!(
                r.comm_retries > 0,
                "{strategy:?}/{ranks}: the pinned drop must force a retry"
            );
            assert!(
                r.comm_dedup_dropped > 0,
                "{strategy:?}/{ranks}: the pinned duplicate must be deduped"
            );
            assert_eq!(r.recoveries, 0, "no rank death in a kill-free plan");
        }
    }
}

#[test]
fn a_stalled_rank_changes_nothing_but_time() {
    let plan = FaultPlan::seeded(9).stall(1, 3, 40).stall(2, 7, 40);
    let r = run_threaded_result(&config(3, Strategy::Distributed, Some(plan)))
        .expect("stalls must never fail a run");
    assert_eq!(fnv1a(&r.density_h), PINNED_3RANK_HASH);
    assert_eq!(r.recoveries, 0);
}

#[test]
fn rank_kill_restarts_from_checkpoint_and_matches_the_pinned_hash() {
    let plan = lossy_plan(0xDEAD).kill(2, 6);
    let run = RunConfig::builder()
        .paper(Dataset::D1, 0.02)
        .ranks(3)
        .seed(4242)
        .steps(12)
        .rebalance(None)
        .checkpoint_every(4)
        .on_fault(FaultPolicy::RestartFromCheckpoint)
        .fault_plan(Some(plan))
        .build()
        .expect("valid recovery config");
    let r = run_threaded_result(&run).expect("recovery must complete the run");
    assert_eq!(r.recoveries, 1, "exactly one replay after the kill");
    assert_eq!(r.population, 389, "population drifted under recovery");
    assert_eq!(
        fnv1a(&r.density_h),
        PINNED_3RANK_HASH,
        "recovered run no longer bitwise identical to the pinned baseline"
    );
    assert!(r.faults_injected > 0);
    assert!(r.comm_retries > 0);
}

/// Scenario-lowered configs recover exactly like hand-built ones: the
/// freestream scenario, killed mid-run over a lossy transport, must
/// replay from its checkpoint to the same digest `scenario_guard`
/// pins for the clean threaded run.
#[test]
fn freestream_scenario_kill_recovers_to_the_golden_hash() {
    /// `scenario_guard`'s pinned 3-rank threaded freestream digest.
    const GOLDEN_FREESTREAM_3RANK: u64 = 0x71708dc81019711a;
    let mut run = coupled::scenario::canned("freestream")
        .expect("canned scenario lowers")
        .run;
    run.checkpoint_every = 4;
    run.on_fault = FaultPolicy::RestartFromCheckpoint;
    run.fault_plan = Some(lossy_plan(0xF2EE).kill(2, 6));
    let r = run_threaded_result(&run).expect("recovery must complete the run");
    assert_eq!(r.recoveries, 1, "exactly one replay after the kill");
    assert_eq!(
        fnv1a(&r.density_h),
        GOLDEN_FREESTREAM_3RANK,
        "recovered freestream run diverged from the scenario golden hash"
    );
    assert!(r.faults_injected > 0);
}

#[test]
fn kill_without_checkpoints_replays_from_scratch() {
    // no cadence: the store stays empty, so recovery restarts the
    // whole run from step 0 — still bitwise identical.
    let run = RunConfig::builder()
        .paper(Dataset::D1, 0.02)
        .ranks(3)
        .seed(4242)
        .steps(12)
        .rebalance(None)
        .on_fault(FaultPolicy::RestartFromCheckpoint)
        .fault_plan(Some(FaultPlan::seeded(3).kill(0, 2)))
        .build()
        .expect("valid config");
    let r = run_threaded_result(&run).expect("scratch replay must complete");
    assert_eq!(r.recoveries, 1);
    assert_eq!(r.trace.len(), 12, "full rerun re-traces every step");
    assert_eq!(fnv1a(&r.density_h), PINNED_3RANK_HASH);
}

#[test]
fn fault_counters_reach_the_metrics_registry_and_trace() {
    let reg = Registry::new();
    let mem = MemorySink::new();
    let run = RunConfig::builder()
        .paper(Dataset::D1, 0.02)
        .ranks(3)
        .seed(4242)
        .steps(12)
        .rebalance(None)
        .metrics(reg.clone())
        .trace(TraceSpec::Memory(mem.clone()))
        .fault_plan(Some(lossy_plan(0x0B5)))
        .build()
        .expect("valid config");
    let r = run_threaded_result(&run).expect("lossy run completes");
    let snap = reg.snapshot();
    assert_eq!(snap.counter("comm.retries"), Some(r.comm_retries));
    assert_eq!(
        snap.counter("comm.dedup_dropped"),
        Some(r.comm_dedup_dropped)
    );
    assert_eq!(
        snap.counter("comm.faults_injected"),
        Some(r.faults_injected)
    );
    assert_eq!(snap.counter("engine.recoveries"), Some(0));
    let summaries: Vec<_> = mem
        .events()
        .into_iter()
        .filter(|e| matches!(e, TraceEvent::FaultSummary { .. }))
        .collect();
    assert_eq!(summaries.len(), 1, "one trailing fault summary");
    match &summaries[0] {
        TraceEvent::FaultSummary {
            recoveries,
            retries,
            injected,
            ..
        } => {
            assert_eq!(*recoveries, 0);
            assert_eq!(*retries, r.comm_retries);
            assert_eq!(*injected, r.faults_injected);
        }
        _ => unreachable!(),
    }
}
