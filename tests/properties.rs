//! Property-based tests (proptest) on the core invariants: geometry,
//! wire format, sparse algebra, assignment and the exchange traffic
//! model.

// small dense-matrix constructions read naturally as index loops
#![allow(clippy::needless_range_loop)]

use mesh::geom::{barycentric, tet_contains, tet_volume, tet_volume_signed, Vec3};
use particles::{
    pack_particle, pack_selected, unpack_all, unpack_particle, Particle, ParticleBuffer,
    SortScratch, PACKED_SIZE,
};
use proptest::prelude::*;
use sparse::{cg, solve_dense, CooBuilder, KrylovOptions};
use vmpi::{
    exchange, run_world, traffic, ChaosComm, ChaosWorld, Comm, FaultPlan, ReliableComm,
    ReliableWorld, Strategy as CommStrategy,
};

fn vec3() -> impl Strategy<Value = Vec3> {
    (-1e3f64..1e3, -1e3f64..1e3, -1e3f64..1e3).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

/// A tet with volume bounded away from zero (degenerate tets are
/// rejected; the mesh generator never produces them).
fn good_tet() -> impl Strategy<Value = [Vec3; 4]> {
    [vec3(), vec3(), vec3(), vec3()].prop_filter("non-degenerate", |p| {
        tet_volume(p[0], p[1], p[2], p[3]) > 10.0
    })
}

proptest! {
    #[test]
    fn barycentric_weights_sum_to_one(p in good_tet(), q in vec3()) {
        let w = barycentric(q, p[0], p[1], p[2], p[3]);
        let s: f64 = w.iter().sum();
        prop_assert!((s - 1.0).abs() < 1e-6, "sum {s}");
    }

    #[test]
    fn barycentric_reconstructs_point(p in good_tet(), a in 0.01f64..1.0, b in 0.01f64..1.0, c in 0.01f64..1.0, d in 0.01f64..1.0) {
        // random convex combination of vertices lies inside, and its
        // barycentric coordinates reproduce the combination
        let sum = a + b + c + d;
        let (w0, w1, w2, w3) = (a / sum, b / sum, c / sum, d / sum);
        let q = p[0] * w0 + p[1] * w1 + p[2] * w2 + p[3] * w3;
        prop_assert!(tet_contains(q, p[0], p[1], p[2], p[3], 1e-4));
        let w = barycentric(q, p[0], p[1], p[2], p[3]);
        // tolerance scales with conditioning: thin tets amplify roundoff
        prop_assert!((w[0] - w0).abs() < 1e-4);
        prop_assert!((w[3] - w3).abs() < 1e-4);
    }

    #[test]
    fn swapping_vertices_flips_orientation(p in good_tet()) {
        let v1 = tet_volume_signed(p[0], p[1], p[2], p[3]);
        let v2 = tet_volume_signed(p[1], p[0], p[2], p[3]);
        prop_assert!((v1 + v2).abs() < 1e-9 * v1.abs().max(1.0));
    }

    #[test]
    fn particle_wire_roundtrip(
        px in -1e3f64..1e3, py in -1e3f64..1e3, pz in -1e3f64..1e3,
        vx in -1e6f64..1e6, vy in -1e6f64..1e6, vz in -1e6f64..1e6,
        cell in 0u32..u32::MAX, species in 0u8..255, id in 0u64..u64::MAX,
    ) {
        let p = Particle {
            pos: Vec3::new(px, py, pz),
            vel: Vec3::new(vx, vy, vz),
            cell, species, id,
        };
        let mut buf = Vec::new();
        pack_particle(&p, &mut buf);
        prop_assert_eq!(buf.len(), PACKED_SIZE);
        prop_assert_eq!(unpack_particle(&buf, 0), p);
    }

    #[test]
    fn particle_roundtrips_bitwise_through_scalar_lanes(
        px in -1e3f64..1e3, py in -1e3f64..1e3, pz in -1e3f64..1e3,
        vx in -1e6f64..1e6, vy in -1e6f64..1e6, vz in -1e6f64..1e6,
        cell in 0u32..u32::MAX, species in 0u8..255, id in 0u64..u64::MAX,
    ) {
        let p = Particle {
            pos: Vec3::new(px, py, pz),
            vel: Vec3::new(vx, vy, vz),
            cell, species, id,
        };
        let mut buf = ParticleBuffer::new();
        buf.push(p);
        // push scatters into the six scalar lanes bit-exactly
        prop_assert_eq!(buf.px[0].to_bits(), px.to_bits());
        prop_assert_eq!(buf.py[0].to_bits(), py.to_bits());
        prop_assert_eq!(buf.pz[0].to_bits(), pz.to_bits());
        prop_assert_eq!(buf.vx[0].to_bits(), vx.to_bits());
        prop_assert_eq!(buf.vy[0].to_bits(), vy.to_bits());
        prop_assert_eq!(buf.vz[0].to_bits(), vz.to_bits());
        // get() regathers the identical Particle value
        prop_assert_eq!(buf.get(0), p);
        // pack_selected reads the lanes directly and must agree
        // byte-for-byte with the Particle-value packer
        let mut via_value = Vec::new();
        pack_particle(&p, &mut via_value);
        let via_lanes = pack_selected(&buf, &[0]);
        prop_assert_eq!(&via_value, &via_lanes);
        // unpacking lands the same bits back in the lanes
        let mut back = ParticleBuffer::new();
        unpack_all(&via_lanes, &mut back);
        prop_assert_eq!(back.px[0].to_bits(), px.to_bits());
        prop_assert_eq!(back.vz[0].to_bits(), vz.to_bits());
        prop_assert_eq!(back.id[0], id);
        prop_assert!(back.lanes_consistent());
    }

    #[test]
    fn lanes_stay_consistent_through_sort_and_emigrant_packing(
        cells in proptest::collection::vec(0u32..13, 0..120),
        emigrant_stride in 2usize..5,
    ) {
        let num_cells = 13usize;
        let mut buf = ParticleBuffer::new();
        for (k, &c) in cells.iter().enumerate() {
            let k = k as u64;
            buf.push(Particle {
                pos: Vec3::new(k as f64, 2.0 * k as f64, -(k as f64)),
                vel: Vec3::new(0.5, k as f64, 1.5),
                cell: c,
                species: (k % 2) as u8,
                id: k,
            });
        }
        prop_assert!(buf.lanes_consistent());
        let mut scratch = SortScratch::default();
        buf.sort_by_cell(num_cells, &mut scratch);
        prop_assert!(buf.lanes_consistent());
        // emigrant packing: every `emigrant_stride`-th particle leaves
        let emigrants: Vec<usize> = (0..buf.len()).step_by(emigrant_stride).collect();
        let packed = pack_selected(&buf, &emigrants);
        prop_assert_eq!(packed.len(), emigrants.len() * PACKED_SIZE);
        let mut keep = vec![true; buf.len()];
        for &e in &emigrants {
            keep[e] = false;
        }
        let total = buf.len();
        buf.compact(&keep);
        prop_assert!(buf.lanes_consistent());
        prop_assert_eq!(buf.len(), total - emigrants.len());
        // immigrants arriving re-extend every lane in lockstep
        unpack_all(&packed, &mut buf);
        prop_assert!(buf.lanes_consistent());
        prop_assert_eq!(buf.len(), total);
    }

    #[test]
    fn sort_by_cell_preserves_multiset_and_orders_cells(
        cells in proptest::collection::vec(0u32..17, 0..200),
    ) {
        let num_cells = 17usize;
        let mut buf = ParticleBuffer::new();
        for (k, &c) in cells.iter().enumerate() {
            let k = k as u64;
            buf.push(Particle {
                pos: Vec3::new(k as f64, -(k as f64), 0.5 * k as f64),
                vel: Vec3::new(1.0 + k as f64, 2.0, -3.0),
                cell: c,
                species: (k % 3) as u8,
                id: k,
            });
        }
        let before: Vec<Particle> = (0..buf.len()).map(|i| buf.get(i)).collect();

        let mut scratch = SortScratch::default();
        buf.sort_by_cell(num_cells, &mut scratch);

        // cell[] is non-decreasing
        prop_assert!(buf.cell.windows(2).all(|w| w[0] <= w[1]));

        // same multiset of particles: ids are unique, so sorting both
        // snapshots by id must give identical full records
        let mut after: Vec<Particle> = (0..buf.len()).map(|i| buf.get(i)).collect();
        let mut want = before;
        want.sort_by_key(|p| p.id);
        after.sort_by_key(|p| p.id);
        prop_assert_eq!(after, want);
    }

    #[test]
    fn cg_matches_dense_on_random_spd(seed in 0u64..5000) {
        // random SPD: A = B^T B + n I on small n
        let n = 6usize;
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut rnd = move || {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            ((s % 2000) as f64 - 1000.0) / 500.0
        };
        let b_mat: Vec<Vec<f64>> = (0..n).map(|_| (0..n).map(|_| rnd()).collect()).collect();
        let mut a = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    a[i][j] += b_mat[k][i] * b_mat[k][j];
                }
            }
            a[i][i] += n as f64;
        }
        let rhs: Vec<f64> = (0..n).map(|_| rnd()).collect();

        let mut coo = CooBuilder::new(n, n);
        for i in 0..n {
            for j in 0..n {
                coo.add(i, j, a[i][j]);
            }
        }
        let csr = coo.build();
        let mut x = vec![0.0; n];
        let stats = cg(&csr, &rhs, &mut x, KrylovOptions { rtol: 1e-12, max_iters: 500 });
        prop_assert!(stats.converged);
        let exact = solve_dense(&a, &rhs).unwrap();
        for (xi, ei) in x.iter().zip(&exact) {
            prop_assert!((xi - ei).abs() < 1e-6 * ei.abs().max(1.0), "{xi} vs {ei}");
        }
    }

    #[test]
    fn hungarian_beats_or_matches_greedy(seed in 0u64..2000) {
        let n = 5usize;
        let mut s = seed.wrapping_mul(0xBF58476D1CE4E5B9).wrapping_add(7);
        let mut rnd = move || { s ^= s << 13; s ^= s >> 7; s ^= s << 17; (s % 1000) as i64 };
        let w: Vec<Vec<i64>> = (0..n).map(|_| (0..n).map(|_| rnd()).collect()).collect();
        let (assign, total) = partition::max_weight_assignment(&w);
        // valid permutation
        let mut seen = vec![false; n];
        for &j in &assign {
            prop_assert!(!seen[j]);
            seen[j] = true;
        }
        // greedy row-by-row baseline
        let mut taken = vec![false; n];
        let mut greedy = 0i64;
        for i in 0..n {
            let j = (0..n)
                .filter(|&j| !taken[j])
                .max_by_key(|&j| w[i][j])
                .unwrap();
            taken[j] = true;
            greedy += w[i][j];
        }
        prop_assert!(total >= greedy, "KM {total} < greedy {greedy}");
    }

    #[test]
    fn traffic_model_invariants(nbytes in proptest::collection::vec(0u64..10_000, 9)) {
        // 3x3 migration matrix from the flat vector
        let m: Vec<Vec<u64>> = nbytes.chunks(3).map(|c| c.to_vec()).collect();
        let dc = traffic(CommStrategy::Distributed, &m);
        let cc = traffic(CommStrategy::Centralized, &m);
        let sp = traffic(CommStrategy::Sparse, &m);
        // centralized never has more transactions
        prop_assert!(cc.transactions <= dc.transactions);
        // distributed never moves more bytes
        prop_assert!(dc.total_bytes <= cc.total_bytes);
        // busiest rank bounded by total traffic
        prop_assert!(dc.max_rank_bytes <= 2 * dc.total_bytes);
        prop_assert!(cc.max_rank_bytes <= cc.total_bytes);
        // sparse: 2 messages per nonzero ordered pair, payload plus a
        // 17-byte tagged count frame each (magic + epoch + value);
        // never more pairs than DC slots
        prop_assert_eq!(sp.nonzero_pairs, dc.nonzero_pairs);
        prop_assert_eq!(sp.transactions, 2 * sp.nonzero_pairs);
        prop_assert_eq!(sp.total_bytes, dc.total_bytes + 17 * sp.nonzero_pairs);
        prop_assert!(sp.transactions <= 2 * dc.transactions);
        prop_assert!(sp.max_rank_msgs <= 2 * dc.max_rank_msgs);
        // hierarchical: a nonzero pair costs at most 3 frames (funnel,
        // trunk, scatter; intra-node pairs cost at most 1), every
        // migrated byte moves at least once, and only Hier reports
        // node-pair aggregation
        let hi = traffic(CommStrategy::Hier, &m);
        prop_assert_eq!(hi.nonzero_pairs, dc.nonzero_pairs);
        prop_assert!(hi.transactions <= 3 * hi.nonzero_pairs);
        prop_assert!(hi.total_bytes >= dc.total_bytes);
        prop_assert!(hi.node_pairs <= hi.nonzero_pairs);
        prop_assert_eq!(dc.node_pairs, 0);
        prop_assert_eq!(sp.aggregated_bytes, 0);
    }

    #[test]
    fn sparse_and_distributed_deliver_identical_buffers(
        n in 2usize..7,
        entries in proptest::collection::vec(0u64..600, 36),
    ) {
        // random migration matrix, weighted 75% toward zero entries so
        // all-empty and single-pair cases occur regularly; payload
        // bytes are a deterministic function of (src, dst, offset)
        let weight = |e: u64| if e < 450 { 0 } else { e - 449 };
        let m: Vec<Vec<u64>> = (0..n)
            .map(|s| {
                (0..n)
                    .map(|d| if s == d { 0 } else { weight(entries[s * 6 + d]) })
                    .collect()
            })
            .collect();
        let deliver = |strategy: CommStrategy| {
            let m = m.clone();
            run_world(n, move |c| {
                let outgoing: Vec<Vec<u8>> = (0..c.size())
                    .map(|d| {
                        (0..m[c.rank()][d])
                            .map(|i| (c.rank() as u64 * 31 + d as u64 * 7 + i) as u8)
                            .collect()
                    })
                    .collect();
                exchange(&c, strategy, outgoing)
            })
        };
        let sp = deliver(CommStrategy::Sparse);
        let dc = deliver(CommStrategy::Distributed);
        prop_assert_eq!(sp, dc);
    }

    #[test]
    fn chaotic_transport_delivers_exactly_the_clean_result(
        n in 2usize..5,
        entries in proptest::collection::vec(0u64..600, 16),
        plan_seed in 0u64..u64::MAX,
        drop_rate in 0u32..150, dup_rate in 0u32..150,
        delay_rate in 0u32..150, delay_span in 1u32..4,
    ) {
        // Random migration matrix (75% weighted toward empty entries,
        // like the clean-delivery test above) exchanged with DC over a
        // randomly faulty wire: the reliability sublayer must deliver
        // exactly the clean run's buffers. Failing fault plans shrink
        // through proptest's scalar shrinking of the seed and rates.
        let weight = |e: u64| if e < 450 { 0 } else { e - 449 };
        let m: Vec<Vec<u64>> = (0..n)
            .map(|s| {
                (0..n)
                    .map(|d| if s == d { 0 } else { weight(entries[s * 4 + d]) })
                    .collect()
            })
            .collect();
        let deliver = |faulty: bool| {
            let m = m.clone();
            let plan = FaultPlan::seeded(plan_seed)
                .drops(drop_rate)
                .dups(dup_rate)
                .delays(delay_rate, delay_span);
            let chaos = ChaosWorld::new(plan, n);
            let reliable = ReliableWorld::new(n);
            run_world(n, move |c| {
                let outgoing: Vec<Vec<u8>> = (0..c.size())
                    .map(|d| {
                        (0..m[c.rank()][d])
                            .map(|i| (c.rank() as u64 * 31 + d as u64 * 7 + i) as u8)
                            .collect()
                    })
                    .collect();
                if faulty {
                    let c = ReliableComm::new(
                        ChaosComm::new(c, chaos.clone()),
                        reliable.clone(),
                    );
                    exchange(&c, CommStrategy::Distributed, outgoing)
                } else {
                    exchange(&c, CommStrategy::Distributed, outgoing)
                }
            })
        };
        let clean = deliver(false);
        let chaotic = deliver(true);
        prop_assert_eq!(chaotic, clean);
    }

    #[test]
    fn kway_partition_is_total_and_bounded(k in 2usize..6, seed in 0u64..100) {
        // ring graph of 40 vertices with pseudo-random weights
        let n = 40usize;
        let edges: Vec<(u32, u32)> = (0..n as u32).map(|v| (v, (v + 1) % n as u32)).collect();
        let mut s = seed.wrapping_add(3);
        let mut rnd = move || { s ^= s << 13; s ^= s >> 7; s ^= s << 17; (s % 20 + 1) as i64 };
        let vwgt: Vec<i64> = (0..n).map(|_| rnd()).collect();
        let g = partition::Graph::from_edges(n, &edges, vwgt);
        let part = partition::part_graph_kway(&g, k, partition::KwayOptions::default());
        prop_assert_eq!(part.len(), n);
        prop_assert!(part.iter().all(|&p| (p as usize) < k));
        // weighted imbalance within a generous bound for a ring
        prop_assert!(partition::imbalance(&g, &part, k) < 1.8);
    }
}
