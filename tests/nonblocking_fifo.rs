//! Property tests for the nonblocking point-to-point surface
//! (DESIGN.md §14): however isend postings and irecv completions are
//! interleaved, and however a chaotic wire reorders frames, each
//! ordered (source, destination) pair must deliver its messages in
//! send order. The hierarchical exchange's funnel/trunk/scatter phases
//! are built directly on this guarantee.

use proptest::prelude::*;
use vmpi::{run_world, ChaosComm, ChaosWorld, Comm, FaultPlan, ReliableComm, ReliableWorld};

/// Payload of the `k`-th message from `src` to `dst` — self-describing
/// so a misrouted or reordered delivery names itself in the failure.
fn payload(src: usize, dst: usize, k: usize) -> Vec<u8> {
    vec![0xF1, src as u8, dst as u8, k as u8]
}

/// Every rank isends `msgs` numbered messages to every peer (postings
/// interleaved across peers), then completes one irecv per expected
/// message with a proptest-driven mix of test_recv polling and
/// blocking wait_recv. Returns, per rank, the sequence numbers seen
/// from each source in completion order.
fn world_run<C: Comm>(comm: &C, msgs: usize, polls: &[u32]) -> vmpi::CommResult<Vec<Vec<u8>>> {
    let me = comm.rank();
    let n = comm.size();
    let mut sends = Vec::new();
    for k in 0..msgs {
        for d in 0..n {
            if d != me {
                sends.push(comm.isend(d, payload(me, d, k))?);
            }
        }
    }
    // Per-pair FIFO is a statement about one source's stream, so the
    // interleaving freedom under test is *across* sources: the poll
    // pattern decides, round by round, which peer's next handle gets
    // polled versus force-completed.
    let mut seen: Vec<Vec<u8>> = vec![Vec::new(); n];
    let mut pending: Vec<usize> = (0..n).map(|s| if s == me { 0 } else { msgs }).collect();
    let mut outstanding: Vec<Option<vmpi::RecvHandle>> = (0..n).map(|_| None).collect();
    let mut turn = 0usize;
    while pending.iter().any(|&p| p > 0) {
        let src = (0..n)
            .cycle()
            .skip(turn % n)
            .find(|&s| pending[s] > 0)
            .expect("some pair still pending");
        let handle = outstanding[src].take().unwrap_or_else(|| comm.irecv(src));
        // polling alone cannot force a dropped frame's journal replay,
        // so an all-poll pattern gets a budget after which completions
        // fall through to the blocking path
        let poll = polls[turn % polls.len()] == 1 && turn < 64 * n * msgs;
        turn += 1;
        if poll {
            let mut h = handle;
            if comm.test_recv(&mut h)? {
                seen[src].push(comm.wait_recv(h)?[3]);
                pending[src] -= 1;
            } else {
                // not ready: keep the handle posted, move to the next
                // source — this is the completion interleaving
                outstanding[src] = Some(h);
            }
        } else {
            seen[src].push(comm.wait_recv(handle)?[3]);
            pending[src] -= 1;
        }
    }
    for s in sends {
        comm.wait_send(s)?;
    }
    comm.barrier()?;
    Ok(seen)
}

proptest! {
    /// Bare `ThreadComm`: the transport itself is FIFO per pair, and
    /// no interleaving of postings and completions can reorder it.
    #[test]
    fn interleaved_completions_preserve_pair_fifo(
        n in 2usize..5,
        msgs in 1usize..6,
        polls in proptest::collection::vec(0u32..2, 1..24),
    ) {
        let all = run_world(n, move |c| {
            world_run(&c, msgs, &polls).expect("clean wire never fails")
        });
        for (me, seen) in all.iter().enumerate() {
            for (src, stream) in seen.iter().enumerate() {
                let want: Vec<u8> = if src == me {
                    Vec::new()
                } else {
                    (0..msgs as u8).collect()
                };
                prop_assert_eq!(stream, &want);
            }
        }
    }

    /// The full engine stack — `ReliableComm` over `ChaosComm` — under
    /// reorder plans: delays hold frames past their successors, dups
    /// replay them, drops force retransmission, and the seq layer must
    /// still hand every pair's stream to irecv completions in send
    /// order.
    #[test]
    fn chaotic_reorder_cannot_break_pair_fifo(
        n in 2usize..4,
        msgs in 1usize..5,
        plan_seed in 0u64..u64::MAX,
        delay_rate in 0u32..200, delay_span in 1u32..4,
        dup_rate in 0u32..120, drop_rate in 0u32..120,
        polls in proptest::collection::vec(0u32..2, 1..24),
    ) {
        let plan = FaultPlan::seeded(plan_seed)
            .delays(delay_rate, delay_span)
            .dups(dup_rate)
            .drops(drop_rate);
        let chaos = ChaosWorld::new(plan, n);
        let reliable = ReliableWorld::new(n);
        let all = run_world(n, move |c| {
            let c = ReliableComm::new(ChaosComm::new(c, chaos.clone()), reliable.clone());
            world_run(&c, msgs, &polls).expect("reliability layer absorbs the chaos")
        });
        for (me, seen) in all.iter().enumerate() {
            for (src, stream) in seen.iter().enumerate() {
                let want: Vec<u8> = if src == me {
                    Vec::new()
                } else {
                    (0..msgs as u8).collect()
                };
                prop_assert_eq!(stream, &want);
            }
        }
    }
}
