//! Integration tests for the extension features: cross-species
//! MEX/CEX collisions, the constant magnetic field, the auto-tuner
//! and VTK export — all driven through the public coupled API.

use coupled::{CoupledState, Dataset, MachineProfile, RunConfig};
use mesh::Vec3;

#[test]
fn cross_collisions_preserve_population_and_charge() {
    let mut cfg = Dataset::D1.config(0.03);
    cfg.cross_collisions = true;
    cfg.seed = 77;
    let mut st = CoupledState::new(cfg);
    let mut injected = 0usize;
    let mut exited = 0usize;
    for _ in 0..25 {
        let rec = st.dsmc_step();
        injected += rec.injected_cells.len();
        exited += rec.exited;
    }
    // CEX swaps identities pairwise and MEX only scatters: the
    // inject/exit balance must hold exactly, as without the feature
    assert_eq!(injected, st.particles.len() + exited);
    for p in st.particles.iter() {
        assert!(st.nm.coarse.contains(p.cell as usize, p.pos, 1e-5));
    }
}

#[test]
fn cross_collisions_change_the_flow() {
    let run = |cross: bool| {
        let mut cfg = Dataset::D1.config(0.03);
        cfg.cross_collisions = cross;
        cfg.seed = 12;
        // dense enough for neutral-ion encounters
        cfg.density_hplus = 3e12;
        let mut st = CoupledState::new(cfg);
        let mut colls = 0usize;
        for _ in 0..20 {
            colls += st.dsmc_step().collisions;
        }
        colls
    };
    let with = run(true);
    let without = run(false);
    assert!(
        with > without,
        "cross collisions must add events: {with} !> {without}"
    );
}

#[test]
fn magnetic_field_bends_ion_trajectories() {
    // strong axial B: ions gyrate, acquiring perpendicular velocity
    // correlations; at minimum the run must stay stable and bounded
    let mut cfg = Dataset::D1.config(0.03);
    cfg.b_field = Vec3::new(0.0, 0.0, 0.5);
    cfg.seed = 3;
    let mut st = CoupledState::new(cfg);
    for _ in 0..20 {
        st.dsmc_step();
    }
    for p in st.particles.iter() {
        assert!(p.vel.norm().is_finite());
        assert!(
            p.vel.norm() < 3e5,
            "B field must not pump energy: {:?}",
            p.vel
        );
        assert!(st.nm.coarse.contains(p.cell as usize, p.pos, 1e-5));
    }
}

#[test]
fn magnetic_field_preserves_ion_speed_in_pure_rotation() {
    // with E≈0 (no ions deposited -> no field) the Boris rotation is
    // energy-conserving: compare speeds before/after one PIC kick
    let nm = {
        let spec = mesh::NozzleSpec {
            nd: 4,
            nz: 4,
            ..mesh::NozzleSpec::default()
        };
        let coarse = spec.generate();
        mesh::NestedMesh::from_coarse(coarse, move |c, n| spec.classify(c, n))
    };
    let (table, _h, hp) = particles::SpeciesTable::hydrogen_plasma(1.0, 1.0);
    let mut buf = particles::ParticleBuffer::new();
    buf.push(particles::Particle {
        pos: nm.coarse.centroids[0],
        vel: Vec3::new(2e4, 0.0, 0.0),
        cell: 0,
        species: hp,
        id: 0,
    });
    let ef = pic::ElectricField::zeros(&nm.fine);
    let b = Vec3::new(0.0, 0.0, 0.3);
    let v0 = buf.vel(0).norm();
    pic::accelerate_charged(&nm, &mut buf, &table, &ef, b, 1e-8);
    assert!((buf.vel(0).norm() - v0).abs() < 1e-9 * v0);
    assert!(buf.vel(0).y.abs() > 0.0, "rotation must occur");
}

#[test]
fn autotuner_prefers_some_rebalancing_on_skewed_plume() {
    let run = RunConfig::builder()
        .paper(Dataset::D1, 0.03)
        .ranks(6)
        .seed(9)
        .build()
        .expect("valid test config");
    let report = coupled::tune_balancer(
        &run,
        MachineProfile::tianhe2(),
        20,
        &[5, 1000], // rebalance often vs effectively never
        &[1.5],
    );
    assert_eq!(report.points.len(), 2);
    let often = report.points.iter().find(|p| p.t_interval == 5).unwrap();
    let never = report.points.iter().find(|p| p.t_interval == 1000).unwrap();
    assert!(often.rebalances > 0);
    assert_eq!(never.rebalances, 0);
    assert!(
        often.total_time < never.total_time,
        "rebalancing must pay off on the filling plume: {} !< {}",
        often.total_time,
        never.total_time
    );
}

#[test]
fn vtk_export_of_simulation_fields() {
    let mut st = CoupledState::new(Dataset::D1.config(0.02));
    for _ in 0..5 {
        st.dsmc_step();
    }
    let (neutral, _) = st.counts_per_cell();
    let field: Vec<f64> = neutral.iter().map(|&c| c as f64).collect();
    let s = mesh::vtk::to_vtk_string(
        &st.nm.coarse,
        &[mesh::CellField {
            name: "count",
            values: &field,
        }],
    );
    assert!(s.contains("SCALARS count double 1"));
    // one value per cell after the lookup table line
    let data: Vec<&str> = s
        .lines()
        .skip_while(|l| !l.starts_with("LOOKUP_TABLE"))
        .skip(1)
        .collect();
    assert_eq!(data.len(), st.nm.num_coarse());
}
