//! Observability guard (DESIGN.md §11): turning on the metrics
//! registry and trace sinks must not perturb the physics by a single
//! bit, and the structured trace must account for the report's
//! communication totals exactly.

use coupled::prelude::*;

/// FNV-1a over the little-endian bytes of the density field — the
/// same hash `engine_guard` pins the unobserved baselines with.
fn fnv1a(values: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for v in values {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// The engine_guard configuration, ready for observability add-ons.
fn guard_builder() -> RunConfigBuilder {
    RunConfig::builder()
        .paper(Dataset::D1, 0.02)
        .ranks(3)
        .seed(4242)
        .steps(12)
        .rebalance(None)
}

#[test]
fn observed_threaded_run_is_bitwise_identical_to_baseline() {
    let reg = Registry::new();
    let run = guard_builder()
        .metrics(reg.clone())
        .trace(TraceSpec::Memory(MemorySink::new()))
        .build()
        .unwrap();
    let r = run_threaded(&run);
    assert_eq!(r.population, 389, "population drifted under observation");
    assert_eq!(
        fnv1a(&r.density_h),
        0x8e483db2789e1ad2,
        "metrics/trace observation changed the threaded physics"
    );
    // ... while the registry really recorded the run
    let snap = reg.snapshot();
    assert_eq!(snap.counter("engine.steps"), Some(12));
    assert!(
        snap.gauge("kernels.rank0.worker0.busy_seconds").is_some(),
        "kernel pool busy time missing from the registry"
    );
}

#[test]
fn observed_serial_run_is_bitwise_identical_to_baseline() {
    let reg = Registry::new();
    let run = guard_builder().metrics(reg.clone()).build().unwrap();
    let r = run_serial(&run);
    assert_eq!(r.population, 389, "population drifted under observation");
    assert_eq!(
        fnv1a(&r.density_h),
        0x9839330415d13fb3,
        "metrics observation changed the serial physics"
    );
    assert_eq!(reg.snapshot().counter("engine.steps"), Some(12));
    // serial runs never touch the wire
    assert_eq!(r.transactions, 0);
    assert!(r.trace.iter().all(|t| t.transactions == 0));
}

#[test]
fn jsonl_trace_sums_match_threaded_report_totals_exactly() {
    let path = std::env::temp_dir().join(format!("obs_guard_{}.jsonl", std::process::id()));
    let run = guard_builder()
        .trace(TraceSpec::Jsonl(path.clone()))
        .build()
        .unwrap();
    let r = run_threaded(&run);

    let text = std::fs::read_to_string(&path).expect("trace file written");
    std::fs::remove_file(&path).ok();
    let (mut tx, mut bytes, mut steps, mut meta_seen) = (0u64, 0u64, 0usize, false);
    for line in text.lines() {
        let v = obs::json::parse(line).expect("every trace line is valid JSON");
        match v.get("type").and_then(|t| t.as_str()).expect("typed event") {
            "meta" => {
                meta_seen = true;
                assert_eq!(
                    v.get("schema_version").unwrap().as_u64(),
                    Some(obs::SCHEMA_VERSION as u64)
                );
                assert_eq!(v.get("ranks").unwrap().as_u64(), Some(3));
                assert_eq!(v.get("steps").unwrap().as_u64(), Some(12));
            }
            "step" => {
                steps += 1;
                tx += v.get("transactions").unwrap().as_u64().unwrap();
                bytes += v.get("bytes").unwrap().as_u64().unwrap();
            }
            "exchange" | "rebalance" => {}
            other => panic!("unknown trace event type {other:?}"),
        }
    }
    assert!(meta_seen, "trace must lead with the meta record");
    assert_eq!(steps, 12);
    assert!(r.transactions > 0, "3 ranks must communicate");
    assert_eq!(tx, r.transactions, "per-step sums != report.transactions");
    assert_eq!(bytes, r.bytes, "per-step sums != report.bytes");
}

#[test]
fn memory_trace_agrees_with_report_trace() {
    let mem = MemorySink::new();
    let run = guard_builder()
        .trace(TraceSpec::Memory(mem.clone()))
        .build()
        .unwrap();
    let r = run_threaded(&run);
    let steps: Vec<StepTrace> = mem
        .events()
        .into_iter()
        .filter_map(|e| match e {
            TraceEvent::Step { trace, .. } => Some(trace),
            _ => None,
        })
        .collect();
    assert_eq!(steps, r.trace, "sink and report must see identical steps");
    let sum_tx: u64 = steps.iter().map(|t| t.transactions).sum();
    let sum_bytes: u64 = steps.iter().map(|t| t.bytes).sum();
    assert_eq!(sum_tx, r.transactions);
    assert_eq!(sum_bytes, r.bytes);
}

#[test]
fn modelled_driver_trace_sums_match_totals() {
    let mem = MemorySink::new();
    let run = RunConfig::builder()
        .paper(Dataset::D1, 0.02)
        .ranks(4)
        .seed(7)
        .steps(10)
        .trace(TraceSpec::Memory(mem.clone()))
        .build()
        .unwrap();
    let report = ClusterSim::new(&run, MachineProfile::tianhe2()).run(10);
    assert!(report.transactions > 0);
    let sum_tx: u64 = report.trace.iter().map(|t| t.transactions).sum();
    let sum_bytes: u64 = report.trace.iter().map(|t| t.bytes).sum();
    assert_eq!(sum_tx, report.transactions);
    assert_eq!(sum_bytes, report.bytes);
    // exchange events carry the exact protocol prediction here, so
    // they account for the same totals
    let ev_bytes: u64 = mem
        .events()
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Exchange(ev) => Some(ev.bytes),
            _ => None,
        })
        .sum();
    assert_eq!(ev_bytes, report.bytes);
}

#[test]
fn run_report_json_export_is_parseable_and_versioned() {
    let reg = Registry::new();
    let run = guard_builder().metrics(reg.clone()).build().unwrap();
    let r = run_threaded(&run);
    let text = r.to_json(Some(&reg.snapshot())).to_string();
    let v = obs::json::parse(&text).unwrap();
    assert_eq!(
        v.get("schema_version").unwrap().as_u64(),
        Some(obs::SCHEMA_VERSION as u64)
    );
    assert_eq!(
        v.get("transactions").unwrap().as_u64(),
        Some(r.transactions)
    );
    assert_eq!(v.get("steps").unwrap().as_u64(), Some(12));
    assert_eq!(
        v.get("density_h").unwrap().as_array().unwrap().len(),
        r.density_h.len()
    );
    assert!(v.get("metrics").is_some());
}
