//! Integration of the load balancer with the real mesh and the
//! modelled cluster driver: Algorithm 1 end-to-end.

use balance::{remap_identity, remap_km, RebalanceConfig};
use coupled::{ClusterSim, Dataset, MachineProfile, RunConfig};
use mesh::NozzleSpec;
use partition::{imbalance, part_graph_kway, Graph, KwayOptions};
use vmpi::Strategy;

fn cluster(ranks: usize, lb: bool) -> ClusterSim {
    let run = RunConfig::builder()
        .paper(Dataset::D1, 0.03)
        .ranks(ranks)
        .seed(31)
        .strategy(Strategy::Distributed)
        .rebalance(lb.then(|| RebalanceConfig {
            t_interval: 6,
            ..RebalanceConfig::default()
        }))
        .build()
        .expect("valid test config");
    ClusterSim::new(&run, MachineProfile::tianhe2())
}

#[test]
fn weighted_partition_balances_real_plume_load() {
    // run to build a skewed particle field, then partition with the
    // weighted load model and check the weighted imbalance
    let mut cs = cluster(4, false);
    for _ in 0..15 {
        cs.step();
    }
    let (neutral, charged) = cs.state.counts_per_cell();
    let wlm = balance::weighted_load_model(&neutral, &charged, balance::WlmParams::default());
    let (xadj, adjncy) = cs.state.nm.coarse.cell_graph();
    let g = Graph::new(xadj, adjncy, wlm);
    let part = part_graph_kway(&g, 4, KwayOptions::default());
    let imb = imbalance(&g, &part, 4);
    assert!(imb < 1.35, "weighted partition imbalance {imb}");
}

#[test]
fn unweighted_partition_is_much_worse_for_particles() {
    let mut cs = cluster(4, false);
    for _ in 0..15 {
        cs.step();
    }
    let (neutral, charged) = cs.state.counts_per_cell();
    let load: Vec<i64> = neutral
        .iter()
        .zip(&charged)
        .map(|(&n, &c)| (n + c) as i64 + 1)
        .collect();
    let (xadj, adjncy) = cs.state.nm.coarse.cell_graph();

    // unweighted decomposition (the initial one)
    let g_unit = Graph::new(xadj.clone(), adjncy.clone(), vec![1; load.len()]);
    let part_unit = part_graph_kway(&g_unit, 4, KwayOptions::default());
    // weighted decomposition
    let g_load = Graph::new(xadj, adjncy, load.clone());
    let part_load = part_graph_kway(&g_load, 4, KwayOptions::default());

    // evaluate both against the *particle* load
    let eval = |part: &[u32]| {
        let mut w = [0i64; 4];
        for (c, &p) in part.iter().enumerate() {
            w[p as usize] += load[c];
        }
        *w.iter().max().unwrap() as f64 * 4.0 / load.iter().sum::<i64>() as f64
    };
    let unweighted = eval(&part_unit);
    let weighted = eval(&part_load);
    assert!(
        weighted < unweighted,
        "weighted {weighted} must beat unweighted {unweighted}"
    );
}

#[test]
fn km_remap_on_real_partitions_migrates_less() {
    let mut cs = cluster(6, false);
    for _ in 0..12 {
        cs.step();
    }
    let (neutral, charged) = cs.state.counts_per_cell();
    let load: Vec<u64> = neutral.iter().zip(&charged).map(|(&n, &c)| n + c).collect();
    let wlm = balance::weighted_load_model(&neutral, &charged, balance::WlmParams::default());
    let (xadj, adjncy) = cs.state.nm.coarse.cell_graph();
    let g = Graph::new(xadj, adjncy, wlm);
    let new_part = part_graph_kway(&g, 6, KwayOptions::default());

    let km = remap_km(cs.owner(), &new_part, &load, 6);
    let id = remap_identity(&new_part);
    let vol_km = balance::migration_volume(cs.owner(), &km, &load);
    let vol_id = balance::migration_volume(cs.owner(), &id, &load);
    assert!(vol_km <= vol_id, "KM {vol_km} !<= identity {vol_id}");
}

#[test]
fn modelled_lb_improves_worst_rank_share() {
    // 45 steps (3 rebalance intervals) rather than 30: right after the
    // plume front crosses the domain the instantaneous worst-rank
    // share is noisy and the 30-step comparison flips sign depending
    // on the RNG stream; by 45 steps the balanced run wins for every
    // seed we probed.
    let no = {
        let mut cs = cluster(4, false);
        cs.run(45)
    };
    let with = {
        let mut cs = cluster(4, true);
        cs.run(45)
    };
    let worst = |rep: &coupled::ClusterReport| {
        rep.trace
            .last()
            .unwrap()
            .share
            .iter()
            .copied()
            .fold(0.0f64, f64::max)
    };
    assert!(with.rebalances >= 1);
    assert!(
        worst(&with) < worst(&no),
        "LB worst share {} !< no-LB {}",
        worst(&with),
        worst(&no)
    );
}

#[test]
fn partitions_of_nozzle_mesh_are_connected_enough() {
    // sanity on mesh+partition integration: the k-way partitioner on
    // the real nozzle adjacency should produce a cut far below the
    // total face count
    let mesh = NozzleSpec {
        nd: 8,
        nz: 12,
        ..NozzleSpec::default()
    }
    .generate();
    let (xadj, adjncy) = mesh.cell_graph();
    let total_adj = adjncy.len() as i64 / 2;
    let g = Graph::new(xadj, adjncy, vec![1; mesh.num_cells()]);
    let part = part_graph_kway(&g, 8, KwayOptions::default());
    let cut = partition::edge_cut(&g, &part);
    assert!(
        cut * 4 < total_adj,
        "cut {cut} vs {total_adj} interior faces"
    );
}
