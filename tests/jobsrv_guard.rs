//! Regression guard for the job server (DESIGN.md §16).
//!
//! Two properties are pinned:
//!
//! 1. Serving a run as a job — concurrently with other jobs, through
//!    the fair-share queue, with trace fan-out attached — is bitwise
//!    identical to running the engine solo (`engine_guard`'s pinned
//!    hash), and an identical second submission is served from ONE
//!    engine run with the cache hit observable in the job metadata.
//! 2. A job whose worker dies mid-run (fault-plan kill) completes via
//!    checkpoint replay on a later dispatch and still matches the
//!    pinned hash (`chaos_guard`'s recovery invariant, now across the
//!    server's queue instead of inside one call).

use jobsrv::prelude::*;
use jobsrv::JobPriority;

/// FNV-1a over the little-endian bytes of the density field — the
/// same digest `engine_guard` pins.
fn fnv1a(values: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for v in values {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// `engine_guard`'s pinned threaded baseline for `guard_config`.
const PINNED_3RANK_HASH: u64 = 0x8e483db2789e1ad2;

fn guard_builder() -> RunConfigBuilder {
    RunConfig::builder()
        .paper(Dataset::D1, 0.02)
        .ranks(3)
        .seed(4242)
        .steps(12)
        .rebalance(None)
}

fn guard_config() -> RunConfig {
    guard_builder().build().expect("valid guard config")
}

#[test]
fn served_jobs_are_bitwise_identical_to_solo_runs_and_cache_deduplicates() {
    let srv = JobServer::start(ServerConfig::default().workers(2).thread_budget(16));

    // Two tenants submit the identical config; a third job differs.
    let a = srv.submit(
        JobSpec::new(guard_config())
            .tenant("team-a")
            .priority(JobPriority::High),
    );
    let b = srv.submit(JobSpec::new(guard_config()).tenant("team-b"));
    let c = srv.submit(
        JobSpec::new(
            guard_builder()
                .seed(77)
                .build()
                .expect("valid variant config"),
        )
        .tenant("team-a"),
    );

    let ra = a.wait().expect("leader job completes");
    let rb = b.wait().expect("duplicate job completes");
    let rc = c.wait().expect("variant job completes");

    // The served report is bitwise the solo engine result.
    assert_eq!(ra.population, 389, "population drifted through the server");
    assert_eq!(ra.density_h.len(), 432);
    assert_eq!(
        fnv1a(&ra.density_h),
        PINNED_3RANK_HASH,
        "served report no longer bitwise identical to the solo engine baseline"
    );

    // The duplicate was served without a second engine run: bitwise
    // equal (density AND trace), cache hit visible in the metadata.
    assert_eq!(ra.density_h, rb.density_h);
    assert_eq!(ra.trace, rb.trace);
    assert_eq!(ra.population, rb.population);
    let (ma, mb) = (
        ra.job.as_ref().expect("leader is stamped"),
        rb.job.as_ref().expect("duplicate is stamped"),
    );
    assert!(!ma.cache_hit, "the leader ran the engine");
    assert!(mb.cache_hit, "the duplicate must not run the engine");
    assert_eq!(ma.config_hash, mb.config_hash);
    assert_eq!(ma.config_hash, guard_config().config_hash());
    assert_ne!(ma.job_id, mb.job_id, "each submission keeps its own id");

    // The variant config really ran separately.
    assert_ne!(fnv1a(&rc.density_h), fnv1a(&ra.density_h));
    assert_ne!(
        rc.job.as_ref().unwrap().config_hash,
        ma.config_hash,
        "different seed must produce a different canonical hash"
    );

    // Exactly two engine attempts total: one per distinct config.
    let stats = srv.stats();
    assert_eq!(stats.submitted, 3);
    assert_eq!(
        stats.attempts, 2,
        "identical submissions must share one run"
    );
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.failed, 0);

    // Post-completion resubmission is an immediate cache hit, still
    // bitwise identical.
    let d = srv.submit(JobSpec::new(guard_config()).tenant("team-c"));
    assert_eq!(d.status(), JobStatus::Done { cache_hit: true });
    let rd = d.wait().expect("cached job serves instantly");
    assert_eq!(ra.density_h, rd.density_h);
    assert_eq!(ra.trace, rd.trace);
    assert!(rd.job.as_ref().unwrap().cache_hit);
    assert_eq!(srv.stats().attempts, 2, "cache service runs no engine");
}

#[test]
fn killed_worker_job_recovers_from_checkpoint_with_the_pinned_hash() {
    // Rank 2 dies at step 6; checkpoints every 4 steps. The first
    // engine attempt fails, the job goes back through the queue, and
    // the second attempt resumes from step 4 — completing with the
    // exact solo-run density.
    let run = guard_builder()
        .checkpoint_every(4)
        .on_fault(FaultPolicy::RestartFromCheckpoint)
        .fault_plan(Some(FaultPlan::seeded(2).kill(2, 6)))
        .build()
        .expect("valid recovery config");

    let srv = JobServer::start(ServerConfig::default().workers(1).max_attempts(3));
    let h = srv.submit(JobSpec::new(run).tenant("chaos").label("kill mid-run"));
    let rx = h.subscribe();
    let report = h.wait().expect("job must recover and complete");

    assert_eq!(report.recoveries, 1, "exactly one replay after the kill");
    assert_eq!(report.population, 389, "population drifted under recovery");
    assert_eq!(
        fnv1a(&report.density_h),
        PINNED_3RANK_HASH,
        "recovered served report no longer matches the pinned baseline"
    );
    // The trace holds only the replayed tail: resume at 4, run to 12.
    assert_eq!(report.trace.len(), 8, "replay must resume from step 4");
    let meta = report.job.as_ref().expect("served report is stamped");
    assert_eq!(meta.attempts, 2, "one failed dispatch plus one replay");
    assert!(!meta.cache_hit);

    // Subscribers followed the job across the worker death: a Meta
    // event per attempt and every replayed step.
    let events: Vec<TraceEvent> = rx.iter().collect();
    let metas = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Meta { .. }))
        .count();
    let steps = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Step { .. }))
        .count();
    assert!(
        metas >= 2,
        "each engine attempt re-announces itself: {metas}"
    );
    assert!(steps >= 8, "the full replayed tail is streamed: {steps}");
}

/// Submitting by scenario name goes through the same canonical-hash
/// cache as hand-built configs: the second submission of the same
/// name never runs the engine, and the served density matches the
/// `scenario_guard` golden digest for the jet scenario.
#[test]
fn scenario_name_submissions_share_one_engine_run() {
    /// `scenario_guard`'s pinned 3-rank threaded jet digest.
    const GOLDEN_JET_3RANK: u64 = 0xc47aa5e2c2986cc3;
    let srv = JobServer::start(ServerConfig::default().workers(2));

    let spec = |tenant: &str| {
        JobSpec::from_scenario("jet")
            .expect("canned scenario lowers")
            .tenant(tenant)
    };
    assert_eq!(spec("team-a").label, "scenario:jet");
    let a = srv.submit(spec("team-a"));
    let b = srv.submit(spec("team-b"));
    let ra = a.wait().expect("leader scenario job completes");
    let rb = b.wait().expect("duplicate scenario job completes");

    assert_eq!(
        fnv1a(&ra.density_h),
        GOLDEN_JET_3RANK,
        "served jet report diverged from the scenario golden hash"
    );
    assert_eq!(ra.density_h, rb.density_h);
    assert!(!ra.job.as_ref().unwrap().cache_hit, "the leader ran");
    assert!(
        rb.job.as_ref().unwrap().cache_hit,
        "same scenario name must be served from the leader's run"
    );
    assert_eq!(
        ra.job.as_ref().unwrap().config_hash,
        coupled::scenario::canned("jet").unwrap().run.config_hash(),
        "the cache key is the lowered config's canonical hash"
    );
    assert_eq!(srv.stats().attempts, 1, "one engine run for both jobs");

    // an unknown name is a typed error, not a panic
    assert!(JobSpec::from_scenario("warp-core").is_err());
}
