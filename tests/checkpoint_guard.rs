//! Checkpoint error-path guard: every way a restore can go wrong must
//! surface as a typed [`CheckpointError`], never a panic — and the
//! happy path (interrupt, restore, run to the end) must stay bitwise
//! identical, including through the per-rank recovery envelope.

use coupled::{
    checkpoint, checkpoint_rank, restore, restore_rank, CheckpointError, CoupledState, Dataset,
};

fn sim() -> CoupledState {
    let mut cfg = Dataset::D1.config(0.02);
    cfg.seed = 777;
    CoupledState::new(cfg)
}

#[test]
fn truncated_file_roundtrip_is_a_typed_error() {
    let mut a = sim();
    for _ in 0..5 {
        a.dsmc_step();
    }
    let blob = checkpoint(&a);
    let dir = std::env::temp_dir().join("dsmc_pic_ckpt_guard");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("truncated.ckpt");
    // write the checkpoint, then truncate it mid-body as a crashed
    // writer would leave it
    std::fs::write(&path, &blob[..blob.len() - 7]).expect("write");
    let read = std::fs::read(&path).expect("read");
    let mut b = sim();
    assert_eq!(restore(&mut b, &read), Err(CheckpointError::Truncated));
    // an empty file is just as truncated
    std::fs::write(&path, b"").expect("write");
    let read = std::fs::read(&path).expect("read");
    assert_eq!(restore(&mut b, &read), Err(CheckpointError::Truncated));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_magic_and_bad_version_are_typed_errors() {
    let a = sim();
    let mut blob = checkpoint(&a);
    let mut b = sim();
    // wrong magic: some other file format entirely
    let mut wrong = blob.clone();
    wrong[..4].copy_from_slice(b"ELF\x7f");
    assert_eq!(restore(&mut b, &wrong), Err(CheckpointError::BadMagic));
    // a future version this build does not understand
    blob[4] = 99;
    assert!(matches!(
        restore(&mut b, &blob),
        Err(CheckpointError::BadVersion(99))
    ));
}

#[test]
fn v1_restore_reseeds_deterministically() {
    // hand-build a v1 blob (magic, version 1, step, count, records):
    // still restorable, and two restores agree on the re-seeded RNG
    let mut a = sim();
    for _ in 0..3 {
        a.dsmc_step();
    }
    let mut blob = Vec::new();
    blob.extend_from_slice(b"DPIC");
    blob.extend_from_slice(&1u32.to_le_bytes());
    blob.extend_from_slice(&(a.step_count as u64).to_le_bytes());
    blob.extend_from_slice(&(a.particles.len() as u64).to_le_bytes());
    for i in 0..a.particles.len() {
        particles::pack_particle(&a.particles.get(i), &mut blob);
    }
    let mut b = sim();
    let mut c = sim();
    restore(&mut b, &blob).expect("v1 restores");
    restore(&mut c, &blob).expect("v1 restores");
    assert_eq!(b.step_count, a.step_count);
    assert_eq!(b.particles.len(), a.particles.len());
    assert_eq!(b.rng, c.rng, "v1 re-seed must be deterministic");
}

#[test]
fn interrupt_restore_and_finish_is_bitwise_identical() {
    // the full kill-at-step-k story at the state level: run to k,
    // checkpoint through the per-rank envelope, "crash", restore into
    // a fresh state and run both to the end — bitwise equal.
    let k = 6;
    let total = 12;
    let mut a = sim();
    for _ in 0..k {
        a.dsmc_step();
    }
    let owner = vec![0u32; a.nm.num_coarse()];
    let envelope = checkpoint_rank(&a, &owner);

    let mut b = sim();
    let restored_owner = restore_rank(&mut b, 0, &envelope).expect("envelope restores");
    assert_eq!(restored_owner, owner);
    for _ in k..total {
        a.dsmc_step();
        b.dsmc_step();
    }
    assert_eq!(a.particles.len(), b.particles.len());
    for i in 0..a.particles.len() {
        assert_eq!(a.particles.get(i), b.particles.get(i), "particle {i}");
    }
    assert_eq!(a.rng, b.rng, "RNG streams diverged");
    assert_eq!(a.poisson.phi(), b.poisson.phi(), "potentials diverged");
    assert_eq!(
        a.injector.as_ref().map(|i| i.carry()),
        b.injector.as_ref().map(|i| i.carry()),
        "injector carries diverged"
    );
}
