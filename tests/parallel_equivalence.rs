//! Cross-crate integration: the real threaded parallel solver against
//! the serial reference, and the two exchange strategies against each
//! other (the paper's §VII-A validation, at test scale).

use coupled::{run_serial, run_threaded, Dataset, RunConfig};
use kernels::Pool;
use mesh::{NestedMesh, NozzleSpec};
use particles::{sample, Particle, ParticleBuffer, SpeciesTable};
use pic::{deposit_charge_pooled, PoissonSolver};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sparse::KrylovOptions;
use vmpi::Strategy;

fn base_run(ranks: usize) -> RunConfig {
    RunConfig::builder()
        .paper(Dataset::D1, 0.03)
        .ranks(ranks)
        .seed(1234)
        .steps(20)
        .rebalance(None)
        .build()
        .expect("valid test config")
}

#[test]
fn parallel_population_tracks_serial() {
    let run4 = base_run(4);
    let ser = run_serial(&run4);
    let par = run_threaded(&run4);
    let rel = (par.population as f64 - ser.population as f64).abs() / ser.population.max(1) as f64;
    assert!(
        rel < 0.1,
        "serial {} vs parallel {}",
        ser.population,
        par.population
    );
}

#[test]
fn density_profiles_agree_between_rank_counts() {
    // 2 ranks vs 6 ranks: same physics, different decomposition
    let a = run_threaded(&base_run(2));
    let b = run_threaded(&base_run(6));
    let ta: f64 = a.density_h.iter().sum();
    let tb: f64 = b.density_h.iter().sum();
    assert!(
        (ta - tb).abs() / ta.max(1e-300) < 0.15,
        "2-rank {ta:e} vs 6-rank {tb:e}"
    );
}

#[test]
fn centralized_and_distributed_same_physics() {
    let mut dc = base_run(4);
    dc.strategy = Strategy::Distributed;
    let mut cc = base_run(4);
    cc.strategy = Strategy::Centralized;
    let rdc = run_threaded(&dc);
    let rcc = run_threaded(&cc);
    // identical seeds and identical exchange *semantics*: bit-equal
    // populations (only the message routing differs)
    assert_eq!(rdc.population, rcc.population);
    for (a, b) in rdc.density_h.iter().zip(&rcc.density_h) {
        assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "{a} vs {b}");
    }
}

/// ISSUE acceptance: the sparse counts-first protocol must be a pure
/// message-schedule change — the full coupled pipeline ends in the
/// *identical* final particle state as under the distributed protocol,
/// bit for bit, at both an odd and an even rank count.
#[test]
fn sparse_matches_distributed_bitwise() {
    for ranks in [3usize, 4] {
        let mut dc = base_run(ranks);
        dc.strategy = Strategy::Distributed;
        let mut sp = base_run(ranks);
        sp.strategy = Strategy::Sparse;
        let rdc = run_threaded(&dc);
        let rsp = run_threaded(&sp);
        assert_eq!(rsp.population, rdc.population, "{ranks} ranks");
        assert_eq!(rsp.density_h, rdc.density_h, "{ranks} ranks");
        // the quiet plume flow leaves most rank pairs idle, so the
        // counts-first schedule sends strictly fewer messages
        assert!(
            rsp.transactions < rdc.transactions,
            "{ranks} ranks: sparse {} !< dc {}",
            rsp.transactions,
            rdc.transactions
        );
    }
}

/// Auto is a routing decision per exchange; it must leave the physics
/// bitwise untouched too.
#[test]
fn auto_matches_distributed_bitwise() {
    let mut dc = base_run(4);
    dc.strategy = Strategy::Distributed;
    let mut auto = base_run(4);
    auto.strategy = Strategy::Auto;
    let rdc = run_threaded(&dc);
    let rauto = run_threaded(&auto);
    assert_eq!(rauto.population, rdc.population);
    assert_eq!(rauto.density_h, rdc.density_h);
    assert!(
        rauto.strategy_uses.iter().sum::<u64>() > 0,
        "auto never resolved a concrete strategy"
    );
}

#[test]
fn transaction_counts_reflect_strategy() {
    let mut dc = base_run(5);
    dc.strategy = Strategy::Distributed;
    let mut cc = base_run(5);
    cc.strategy = Strategy::Centralized;
    let rdc = run_threaded(&dc);
    let rcc = run_threaded(&cc);
    // distributed: ~N(N-1) per exchange; centralized: ~2(N-1) plus
    // collectives. DC must send far more messages overall.
    assert!(
        rdc.transactions > rcc.transactions,
        "DC {} !> CC {}",
        rdc.transactions,
        rcc.transactions
    );
    // ... while CC moves at least as many bytes (everything twice,
    // minus root-local traffic)
    assert!(rcc.bytes as f64 >= rdc.bytes as f64 * 0.8);
}

/// The ISSUE acceptance criterion for intra-rank threading: running
/// the field pipeline (deposit → Poisson/CG) with 1 worker and with 4
/// workers must produce *bitwise identical* node charge and an
/// *identical* CG residual history. Deposition replays contribution
/// logs in particle order and CG reduces inner products in fixed-size
/// blocks, so worker count must not leak into a single bit.
#[test]
fn worker_count_invariant_deposit_and_cg_history() {
    let spec = NozzleSpec {
        nd: 5,
        nz: 6,
        ..NozzleSpec::default()
    };
    let coarse = spec.generate();
    let nm = NestedMesh::from_coarse(coarse, move |c, n| spec.classify(c, n));
    let (table, h, hp) = SpeciesTable::hydrogen_plasma(1.0, 100.0);

    // mixed population: charged ions among neutral background
    let mut buf = ParticleBuffer::new();
    let mut rng = StdRng::seed_from_u64(99);
    for k in 0..400u64 {
        let c = (k as usize * 13) % nm.num_coarse();
        let p = nm.coarse.tet_pos(c);
        buf.push(Particle {
            pos: sample::point_in_tet(&mut rng, p[0], p[1], p[2], p[3]),
            vel: mesh::Vec3::ZERO,
            cell: c as u32,
            species: if k % 3 == 0 { hp } else { h },
            id: k,
        });
    }

    let opts = KrylovOptions {
        rtol: 1e-10,
        max_iters: 400,
    };
    let solve = |workers: usize| {
        let pool = Pool::new(workers);
        let mut q = vec![0.0f64; nm.fine.num_nodes()];
        deposit_charge_pooled(&nm, &buf, &table, &mut q, &pool);
        let mut solver = PoissonSolver::new(&nm.fine, opts);
        let mut hist = Vec::new();
        let (phi, stats) = solver.solve_with(&q, &pool, Some(&mut hist));
        (q, phi.to_vec(), hist, stats.iterations)
    };

    let (q1, phi1, hist1, it1) = solve(1);
    let (q4, phi4, hist4, it4) = solve(4);

    assert_eq!(q1, q4, "deposited charge differs between 1 and 4 workers");
    assert_eq!(it1, it4, "CG iteration count differs");
    assert_eq!(hist1.len(), it1 + 1, "history records every iteration");
    assert_eq!(hist1, hist4, "CG residual history differs");
    assert_eq!(phi1, phi4, "potential differs");
    assert!(hist1.last().unwrap() <= &opts.rtol, "CG did not converge");
}

#[test]
fn load_balanced_run_matches_unbalanced_physics() {
    let mut plain = base_run(4);
    plain.steps = 24;
    let mut lb = plain.clone();
    lb.rebalance = Some(balance::RebalanceConfig {
        t_interval: 8,
        threshold: 1.2,
        ..Default::default()
    });
    let a = run_threaded(&plain);
    let b = run_threaded(&lb);
    let rel = (a.population as f64 - b.population as f64).abs() / a.population.max(1) as f64;
    assert!(
        rel < 0.1,
        "LB changed the physics: {} vs {}",
        a.population,
        b.population
    );
}
