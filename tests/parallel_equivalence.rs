//! Cross-crate integration: the real threaded parallel solver against
//! the serial reference, and the two exchange strategies against each
//! other (the paper's §VII-A validation, at test scale).

use coupled::{run_serial, run_threaded, Dataset, RunConfig};
use vmpi::Strategy;

fn base_run(ranks: usize) -> RunConfig {
    let mut run = RunConfig::paper(Dataset::D1, 0.03, ranks);
    run.sim.seed = 1234;
    run.steps = 20;
    run.rebalance = None;
    run
}

#[test]
fn parallel_population_tracks_serial() {
    let run4 = base_run(4);
    let ser = run_serial(&run4);
    let par = run_threaded(&run4);
    let rel = (par.population as f64 - ser.population as f64).abs()
        / ser.population.max(1) as f64;
    assert!(
        rel < 0.1,
        "serial {} vs parallel {}",
        ser.population,
        par.population
    );
}

#[test]
fn density_profiles_agree_between_rank_counts() {
    // 2 ranks vs 6 ranks: same physics, different decomposition
    let a = run_threaded(&base_run(2));
    let b = run_threaded(&base_run(6));
    let ta: f64 = a.density_h.iter().sum();
    let tb: f64 = b.density_h.iter().sum();
    assert!(
        (ta - tb).abs() / ta.max(1e-300) < 0.15,
        "2-rank {ta:e} vs 6-rank {tb:e}"
    );
}

#[test]
fn centralized_and_distributed_same_physics() {
    let mut dc = base_run(4);
    dc.strategy = Strategy::Distributed;
    let mut cc = base_run(4);
    cc.strategy = Strategy::Centralized;
    let rdc = run_threaded(&dc);
    let rcc = run_threaded(&cc);
    // identical seeds and identical exchange *semantics*: bit-equal
    // populations (only the message routing differs)
    assert_eq!(rdc.population, rcc.population);
    for (a, b) in rdc.density_h.iter().zip(&rcc.density_h) {
        assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "{a} vs {b}");
    }
}

#[test]
fn transaction_counts_reflect_strategy() {
    let mut dc = base_run(5);
    dc.strategy = Strategy::Distributed;
    let mut cc = base_run(5);
    cc.strategy = Strategy::Centralized;
    let rdc = run_threaded(&dc);
    let rcc = run_threaded(&cc);
    // distributed: ~N(N-1) per exchange; centralized: ~2(N-1) plus
    // collectives. DC must send far more messages overall.
    assert!(
        rdc.transactions > rcc.transactions,
        "DC {} !> CC {}",
        rdc.transactions,
        rcc.transactions
    );
    // ... while CC moves at least as many bytes (everything twice,
    // minus root-local traffic)
    assert!(rcc.bytes as f64 >= rdc.bytes as f64 * 0.8);
}

#[test]
fn load_balanced_run_matches_unbalanced_physics() {
    let mut plain = base_run(4);
    plain.steps = 24;
    let mut lb = plain.clone();
    lb.rebalance = Some(balance::RebalanceConfig {
        t_interval: 8,
        threshold: 1.2,
        ..Default::default()
    });
    let a = run_threaded(&plain);
    let b = run_threaded(&lb);
    let rel =
        (a.population as f64 - b.population as f64).abs() / a.population.max(1) as f64;
    assert!(rel < 0.1, "LB changed the physics: {} vs {}", a.population, b.population);
}
