//! Regression guard for the scenario subsystem (DESIGN.md §17).
//!
//! Four properties are pinned:
//!
//! 1. Each canned scenario (`scenarios/*.toml`) lowers and runs to a
//!    bitwise-pinned end-of-run `density_h`, serial and 3-rank
//!    threaded. Any drift in the TOML parser, the lowering, the
//!    subcycled DSMC phase or the partial-pump boundary shows up as a
//!    digest mismatch.
//! 2. The new physics knobs are strict opt-ins: `k_sub_dsmc = 1`
//!    reproduces the pre-subcycling engine bit for bit (the
//!    `engine_guard` pinned hashes), and `pump_prob = 1.0` (every
//!    wall hit survives) is bitwise identical to no pump at all.
//! 3. Subcycled DSMC draws from its own RNG stream: changing `k_sub`
//!    never perturbs the main (inject/PIC) stream or the pump stream,
//!    so another species' physics is untouched.
//! 4. The TOML parser is shape-insensitive (key order, whitespace,
//!    comments never change the lowered canonical config) and rejects
//!    bad physics with typed errors — checked property-style.

use coupled::scenario::{self, ScenarioError};
use coupled::{run_serial, run_threaded, ConfigError, CoupledState, Dataset, RunConfig};
use proptest::prelude::*;

/// FNV-1a over the little-endian bytes of the density field — the
/// same digest `engine_guard` pins.
fn fnv1a(values: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for v in values {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// `engine_guard`'s pinned baselines for its guard config.
const PINNED_SERIAL_HASH: u64 = 0x9839330415d13fb3;
const PINNED_3RANK_HASH: u64 = 0x8e483db2789e1ad2;

/// Golden digests of the canned scenarios: (name, serial fnv1a,
/// 3-rank threaded fnv1a) of end-of-run `density_h`. Re-pin with
/// `cargo test --test scenario_guard -- --ignored --nocapture`.
const GOLDEN: &[(&str, u64, u64)] = &[
    ("freestream", 0x35716d00a9d39a82, 0x71708dc81019711a),
    ("thermal_box", 0x3925dfa7468c2678, 0x501ec241194637ec),
    ("jet", 0xd73a6389fe7ad3f2, 0xc47aa5e2c2986cc3),
];

#[test]
#[ignore = "maintenance helper: prints the GOLDEN table for re-pinning"]
fn print_golden_hashes() {
    for &(name, _, _) in GOLDEN {
        let sc = scenario::canned(name).expect("canned scenario lowers");
        let serial = run_serial(&sc.run);
        let threaded = run_threaded(&sc.run);
        println!(
            "    (\"{name}\", {:#018x}, {:#018x}),",
            fnv1a(&serial.density_h),
            fnv1a(&threaded.density_h)
        );
    }
}

#[test]
fn canned_scenarios_serial_density_is_bitwise_pinned() {
    for &(name, serial_hash, _) in GOLDEN {
        let sc = scenario::canned(name).expect("canned scenario lowers");
        let r = run_serial(&sc.run);
        assert!(r.population > 0, "{name}: serial run produced no particles");
        assert_eq!(
            fnv1a(&r.density_h),
            serial_hash,
            "{name}: serial density_h drifted from the golden digest"
        );
    }
}

#[test]
fn canned_scenarios_threaded_density_is_bitwise_pinned() {
    for &(name, _, threaded_hash) in GOLDEN {
        let sc = scenario::canned(name).expect("canned scenario lowers");
        assert_eq!(sc.run.ranks, 3, "{name}: guard expects 3-rank scenarios");
        let r = run_threaded(&sc.run);
        assert!(
            r.population > 0,
            "{name}: threaded run produced no particles"
        );
        assert_eq!(
            fnv1a(&r.density_h),
            threaded_hash,
            "{name}: threaded density_h drifted from the golden digest"
        );
    }
}

fn guard_builder() -> coupled::RunConfigBuilder {
    RunConfig::builder()
        .paper(Dataset::D1, 0.02)
        .ranks(3)
        .seed(4242)
        .steps(12)
        .rebalance(None)
}

/// `k_sub_dsmc = 1` must be the engine that existed before
/// subcycling: same shared RNG stream, same phase schedule, bitwise
/// the `engine_guard` baselines.
#[test]
fn k_sub_one_is_bitwise_identical_to_the_pinned_engine() {
    let run = guard_builder()
        .k_sub_dsmc(1)
        .build()
        .expect("valid guard config");
    assert_eq!(fnv1a(&run_serial(&run).density_h), PINNED_SERIAL_HASH);
    assert_eq!(fnv1a(&run_threaded(&run).density_h), PINNED_3RANK_HASH);
}

/// `pump_prob = 1.0` means every wall hit survives; the survival
/// draws come from the dedicated pump stream, so the run must be
/// bitwise identical to no pump at all — including the pinned
/// baselines, which never configure a pump.
#[test]
fn full_survival_pump_is_bitwise_identical_to_no_pump() {
    let run = guard_builder()
        .pump_prob(1.0)
        .build()
        .expect("valid guard config");
    assert_eq!(fnv1a(&run_serial(&run).density_h), PINNED_SERIAL_HASH);
    assert_eq!(fnv1a(&run_threaded(&run).density_h), PINNED_3RANK_HASH);
}

/// Subcycled DSMC must draw from its dedicated stream only: with
/// chemistry and cross-species collisions disabled, runs at
/// `k_sub = 2` and `k_sub = 4` consume different amounts of DSMC
/// randomness, yet the main stream (injection + PIC) and the pump
/// stream end in the same state and the charged physics is bitwise
/// untouched.
#[test]
fn changing_k_sub_never_perturbs_other_rng_streams() {
    let engine_at = |k_sub: usize| {
        let mut cfg = Dataset::D1.config(0.02);
        cfg.seed = 99;
        cfg.cross_collisions = false;
        cfg.k_sub_dsmc = k_sub;
        cfg.pump_prob = Some(0.7);
        let mut eng = CoupledState::new(cfg);
        // neutralize chemistry so neutrals cannot react into ions
        eng.chemistry.p_steric = 0.0;
        eng.chemistry.k_recomb = 0.0;
        for _ in 0..8 {
            eng.dsmc_step();
        }
        eng
    };
    let a = engine_at(2);
    let b = engine_at(4);
    assert_ne!(
        a.rng_dsmc, b.rng_dsmc,
        "different k_sub must consume the DSMC stream differently"
    );
    assert_eq!(
        a.rng, b.rng,
        "k_sub leaked draws into the main (inject/PIC) stream"
    );
    assert_eq!(
        a.rng_pump, b.rng_pump,
        "k_sub changed how the pump stream is consumed"
    );
    assert_eq!(
        a.poisson.phi(),
        b.poisson.phi(),
        "charged physics diverged under a neutral-only knob"
    );
}

/// The thermal-box scenario opts into time-averaged diagnostics
/// (`avg_window = 4`): the serial driver must fill the averaged
/// fields, matched in shape to their instantaneous counterparts, and
/// the read-only sampling must not perturb the pinned density.
#[test]
fn thermal_box_serial_run_fills_time_averaged_diagnostics() {
    let sc = scenario::canned("thermal_box").expect("canned scenario lowers");
    assert_eq!(sc.run.obs.avg_window, 4);
    let r = run_serial(&sc.run);
    assert_eq!(r.density_h_avg.len(), r.density_h.len());
    assert!(!r.phi_avg.is_empty());
    assert!(r.density_h_avg.iter().all(|d| d.is_finite()));
    assert!(
        r.density_h_avg.iter().any(|&d| d > 0.0),
        "averaged density is identically zero"
    );
}

// ---------------------------------------------------------------------
// Property tests: parser shape-insensitivity and typed error paths
// ---------------------------------------------------------------------

/// The fixed key set the shuffling property rearranges.
const SECTIONS: &[(&str, &[(&str, &str)])] = &[
    (
        "scenario",
        &[("name", "\"prop\""), ("description", "\"p\"")],
    ),
    (
        "domain",
        &[("nd", "4"), ("nz", "6"), ("inlet_radius", "1.5e-3")],
    ),
    ("species.h", &[("density", "7e18"), ("weight", "1e9")]),
    ("injection", &[("v_drift", "1e4"), ("t_inject", "1000.0")]),
    (
        "time",
        &[("dt_dsmc", "5e-8"), ("steps", "3"), ("k_sub_dsmc", "2")],
    ),
    ("walls", &[("t_wall", "300.0"), ("pump_prob", "0.5")]),
    ("run", &[("seed", "21"), ("ranks", "2")]),
];

/// Deterministic Fisher-Yates driven by a splitmix64 stream, so the
/// permutation is a pure function of the proptest-chosen seed.
fn shuffle<T>(items: &mut [T], state: &mut u64) {
    let mut next = || {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    for i in (1..items.len()).rev() {
        items.swap(i, (next() % (i as u64 + 1)) as usize);
    }
}

/// Render the fixed scenario with shuffled section/key order plus
/// seed-dependent spacing and comment noise.
fn render_shuffled(seed: u64) -> String {
    let mut state = seed;
    let mut sections: Vec<_> = SECTIONS.to_vec();
    shuffle(&mut sections, &mut state);
    let mut out = String::new();
    for (section, keys) in sections {
        let pad = " ".repeat((state % 4) as usize);
        out.push_str(&format!("{pad}[{section}]  # section\n"));
        let mut keys: Vec<_> = keys.to_vec();
        shuffle(&mut keys, &mut state);
        for (key, value) in keys {
            let lead = " ".repeat((state % 3) as usize);
            let gap = " ".repeat(1 + (state % 2) as usize);
            out.push_str(&format!("{lead}{key}{gap}={gap}{value}\n"));
        }
        out.push('\n');
    }
    out
}

proptest! {
    #[test]
    fn lowered_config_is_stable_under_key_order_and_whitespace(
        seed_a in 0u64..1_000_000, seed_b in 0u64..1_000_000
    ) {
        let a = scenario::parse(&render_shuffled(seed_a)).expect("shuffled scenario parses");
        let b = scenario::parse(&render_shuffled(seed_b)).expect("shuffled scenario parses");
        prop_assert_eq!(a.run.canonical_string(), b.run.canonical_string());
        prop_assert_eq!(a.run.config_hash(), b.run.config_hash());
    }

    #[test]
    fn negative_density_is_a_typed_flux_error(d in -1e22f64..-1e-3) {
        let text = format!("[species.h]\ndensity = {d:e}\n");
        prop_assert!(matches!(
            scenario::parse(&text),
            Err(ScenarioError::NegativeFlux { .. })
        ));
    }

    #[test]
    fn negative_drift_is_a_typed_flux_error(v in -1e6f64..-1e-3) {
        let text = format!("[injection]\nv_drift = {v:e}\n");
        prop_assert!(matches!(
            scenario::parse(&text),
            Err(ScenarioError::NegativeFlux { .. })
        ));
    }

    #[test]
    fn out_of_range_pump_prob_is_a_typed_config_error(
        above in 1.0001f64..100.0, below in -100.0f64..-0.0001
    ) {
        for p in [above, below] {
            let text = format!("[walls]\npump_prob = {p}\n");
            prop_assert_eq!(
                scenario::parse(&text).unwrap_err(),
                ScenarioError::Config(ConfigError::InvalidPumpProb)
            );
        }
    }

    #[test]
    fn zero_subcycle_is_a_typed_config_error(steps in 1usize..50) {
        let text = format!("[time]\nk_sub_dsmc = 0\nsteps = {steps}\n");
        prop_assert_eq!(
            scenario::parse(&text).unwrap_err(),
            ScenarioError::Config(ConfigError::ZeroDsmcSubcycle)
        );
    }
}
